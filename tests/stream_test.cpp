// Stream semantics tests: same-direction memcpy pipelining, cross-engine
// ordering on direction changes, kernel/event ordering — the behaviors the
// Pagoda spawn path and the HyperQ baseline depend on.
#include <gtest/gtest.h>

#include <vector>

#include "gpu/device.h"
#include "gpu/stream.h"
#include "sim/process.h"

namespace pagoda::gpu {
namespace {

pcie::PcieConfig test_pcie() {
  pcie::PcieConfig cfg;
  cfg.bandwidth_bytes_per_sec = 1e9;  // 1 GB/s: 1us per KB
  cfg.latency = sim::microseconds(2.0);
  cfg.transaction_gap = sim::nanoseconds(500.0);
  return cfg;
}

TEST(Stream, SameDirectionCopiesPipeline) {
  sim::Simulation sim;
  Device dev(sim, GpuSpec::titan_x(), test_pcie());
  Stream s(dev);
  std::vector<sim::Time> done;
  for (int i = 0; i < 3; ++i) {
    s.memcpy_async(pcie::Direction::HostToDevice, nullptr, nullptr, 1000,
                   [&] { done.push_back(sim.now()); });
  }
  sim.run();
  ASSERT_EQ(done.size(), 3u);
  // Wire slots at 1us spacing, each landing 2us later: 3, 4, 5 us.
  // Crucially NOT 3, 6, 9 us (no per-copy completion wait).
  EXPECT_EQ(done[0], sim::microseconds(3));
  EXPECT_EQ(done[1], sim::microseconds(4));
  EXPECT_EQ(done[2], sim::microseconds(5));
}

TEST(Stream, DirectionChangeWaitsForPriorCopies) {
  sim::Simulation sim;
  Device dev(sim, GpuSpec::titan_x(), test_pcie());
  Stream s(dev);
  sim::Time h2d_done = -1;
  sim::Time d2h_done = -1;
  s.memcpy_async(pcie::Direction::HostToDevice, nullptr, nullptr, 1000,
                 [&] { h2d_done = sim.now(); });
  s.memcpy_async(pcie::Direction::DeviceToHost, nullptr, nullptr, 1000,
                 [&] { d2h_done = sim.now(); });
  sim.run();
  // The D2H copy starts only after the H2D completed (cross-engine stream
  // order): completion at 3us + (1us wire + 2us latency) = 6us.
  EXPECT_EQ(h2d_done, sim::microseconds(3));
  EXPECT_EQ(d2h_done, sim::microseconds(6));
}

KernelCoro tiny_kernel(WarpCtx& ctx) {
  ctx.charge(1000.0);  // 1us at 1GHz
  co_return;
}

TEST(Stream, KernelWaitsForCopiesAndBlocksFollowingOnes) {
  sim::Simulation sim;
  Device dev(sim, GpuSpec::titan_x(), test_pcie());
  Stream s(dev);
  sim::Time copy1_done = -1;
  sim::Time copy2_done = -1;
  s.memcpy_async(pcie::Direction::HostToDevice, nullptr, nullptr, 1000,
                 [&] { copy1_done = sim.now(); });
  KernelLaunchParams p;
  p.fn = tiny_kernel;
  p.threads_per_block = 32;
  auto kernel_trig = s.kernel_async(std::move(p));
  s.memcpy_async(pcie::Direction::HostToDevice, nullptr, nullptr, 1000,
                 [&] { copy2_done = sim.now(); });
  sim.run();
  EXPECT_EQ(copy1_done, sim::microseconds(3));
  EXPECT_TRUE(kernel_trig->fired());
  // Kernel runs 3..4us; the trailing copy starts after: wire 4..5, +2 -> 7.
  EXPECT_EQ(copy2_done, sim::microseconds(7));
}

sim::Process sync_user(Device& dev, Stream& s, sim::Time& synced_at) {
  co_await s.synchronize();
  synced_at = dev.sim().now();
}

TEST(Stream, SynchronizeWaitsForEverything) {
  sim::Simulation sim;
  Device dev(sim, GpuSpec::titan_x(), test_pcie());
  Stream s(dev);
  for (int i = 0; i < 4; ++i) {
    s.memcpy_async(pcie::Direction::HostToDevice, nullptr, nullptr, 1000);
  }
  sim::Time synced_at = -1;
  sim.spawn(sync_user(dev, s, synced_at));
  sim.run();
  // Last copy lands at 4 wire slots + 2us latency = 6us.
  EXPECT_EQ(synced_at, sim::microseconds(6));
  EXPECT_TRUE(s.idle());
}

TEST(Stream, SynchronizeOnIdleStreamIsImmediate) {
  sim::Simulation sim;
  Device dev(sim, GpuSpec::titan_x(), test_pcie());
  Stream s(dev);
  sim::Time synced_at = -1;
  sim.spawn(sync_user(dev, s, synced_at));
  sim.run();
  EXPECT_EQ(synced_at, 0);
}

TEST(Stream, IndependentStreamsShareTheEngineFifo) {
  sim::Simulation sim;
  Device dev(sim, GpuSpec::titan_x(), test_pcie());
  Stream a(dev);
  Stream b(dev);
  sim::Time a_done = -1;
  sim::Time b_done = -1;
  a.memcpy_async(pcie::Direction::HostToDevice, nullptr, nullptr, 1000,
                 [&] { a_done = sim.now(); });
  b.memcpy_async(pcie::Direction::HostToDevice, nullptr, nullptr, 1000,
                 [&] { b_done = sim.now(); });
  sim.run();
  // One DMA engine per direction: b's copy waits for a's wire slot.
  EXPECT_EQ(a_done, sim::microseconds(3));
  EXPECT_EQ(b_done, sim::microseconds(4));
}

}  // namespace
}  // namespace pagoda::gpu
