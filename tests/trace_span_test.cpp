// Request-tracing tests: deterministic span identity, the phase-bucket
// tiling invariant (buckets sum EXACTLY to end-to-end latency), span
// lifecycles under the fault plane (retried -> linked attempt hops with
// backoff, evicted -> terminal eviction record), byte-stable JSON dumps,
// tracer passivity (armed run identical to disarmed), the Perfetto export,
// and the Timeline event cap (dropped events are counted, never silent).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/dispatcher.h"
#include "cluster/placement.h"
#include "cluster/traffic.h"
#include "common/rng.h"
#include "fault/plan.h"
#include "obs/attribution.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "obs/trace_span.h"
#include "sim/process.h"

namespace pagoda::obs {
namespace {

// --- span identity ------------------------------------------------------------

TEST(SpanId, IsAPureStructuralFunction) {
  EXPECT_EQ(span_id(0, 1, 0), 0x100u);
  EXPECT_EQ(span_id(1, 1, 0), 0x10100u);
  EXPECT_EQ(span_id(1, 2, 3), 0x10203u);
  // Distinct (uid, attempt, code) keys in range never collide.
  EXPECT_NE(span_id(7, 1, 0), span_id(7, 2, 0));
  EXPECT_NE(span_id(7, 1, 0), span_id(7, 1, 1));
  EXPECT_NE(span_id(7, 1, 0), span_id(8, 1, 0));
  // Phase children are offset by 1 so they never collide with the hop root.
  for (int p = 0; p < kNumPhases; ++p) {
    EXPECT_NE(span_id(3, 1, 1 + p), span_id(3, 1, 0));
  }
}

// --- cluster runs with a tracer attached --------------------------------------

struct TraceRunSpec {
  int nodes = 2;
  std::string policy = "least-loaded";
  int requests = 64;
  std::uint64_t seed = 0xBEEF;
  double arrival_rate = 300.0e3;
  std::string faults;  // FaultPlan spec ("" = fault plane off)
  sim::Duration task_timeout = 0;
  int retry_budget = 3;
  sim::Duration slo = sim::milliseconds(20.0);
  int queue_limit = 0;
  int rows_per_column = 0;  // 0 = node default TaskTable depth
  sched::PolicyKind sched_kind = sched::PolicyKind::kFifo;
  bool mixed_classes = false;  // every 4th request interactive, rest batch
  bool trace = true;           // attach a RequestTracer
};

struct TraceRunOutput {
  cluster::Dispatcher::Stats stats;
  std::vector<RequestTracer::Record> records;
  std::vector<RequestTracer::Drop> drops;
  std::size_t live = 0;
  std::string span_json;
  std::string metrics_json;
  std::vector<int> placements;
  bool done = false;
  sim::Time end_time = 0;
};

sim::Process feed(sim::Simulation& sim, cluster::Dispatcher& disp,
                  const TraceRunSpec& rs) {
  cluster::ArrivalConfig acfg;
  acfg.kind = cluster::ArrivalKind::Poisson;
  acfg.rate_per_sec = rs.arrival_rate;
  cluster::ArrivalSequence seq(acfg, rs.seed);
  cluster::RequestProfile plain;
  plain.slo = rs.slo;
  cluster::RequestProfile interactive;  // small, tight SLO: evicts batch
  interactive.threads_per_task = 64;
  interactive.compute_cycles = 6000.0;
  interactive.stall_cycles = 12000.0;
  interactive.h2d_bytes = 2048;
  interactive.d2h_bytes = 512;
  interactive.slo = sim::milliseconds(2.0);
  interactive.cls = sched::Class::kInteractive;
  cluster::RequestProfile batch;  // heavy, no deadline: the eviction victim
  batch.threads_per_task = 256;
  batch.compute_cycles = 120000.0;
  batch.stall_cycles = 240000.0;
  batch.slo = 0;
  batch.cls = sched::Class::kBatch;
  for (int i = 0; i < rs.requests; ++i) {
    const sim::Duration gap = seq.next_gap();
    if (gap > 0) co_await sim.delay(gap);
    const cluster::RequestProfile& p =
        rs.mixed_classes ? (i % 4 == 0 ? interactive : batch) : plain;
    disp.offer(cluster::synth_request(p, rs.seed, i));
  }
  disp.close();
}

sim::Process settle(cluster::Dispatcher& disp, TraceRunOutput& out,
                    sim::Simulation& sim) {
  co_await disp.drain();
  out.end_time = sim.now();
  out.done = true;
}

TraceRunOutput run_traced_cluster(const TraceRunSpec& rs) {
  sim::Simulation sim;
  std::vector<cluster::NodeConfig> nodes(static_cast<std::size_t>(rs.nodes));
  for (cluster::NodeConfig& nc : nodes) {
    nc.pagoda.sched.kind = rs.sched_kind;
    if (rs.rows_per_column > 0) nc.pagoda.rows_per_column = rs.rows_per_column;
  }
  cluster::Cluster fleet(sim, nodes);
  cluster::DispatcherConfig dc;
  std::string err;
  const auto plan = fault::FaultPlan::parse(rs.faults, &err);
  EXPECT_TRUE(plan.has_value()) << rs.faults << ": " << err;
  dc.faults = *plan;
  if (dc.faults.seed == 0) dc.faults.seed = rs.seed;
  dc.retry.seed = dc.faults.seed;
  dc.retry.budget = rs.retry_budget;
  dc.task_timeout = rs.task_timeout;
  dc.queue_limit = rs.queue_limit;
  dc.sched.kind = rs.sched_kind;
  dc.qos = rs.mixed_classes;
  dc.watchdog.probe_period = sim::microseconds(100.0);
  cluster::Dispatcher disp(fleet, cluster::make_policy(rs.policy), dc);
  RequestTracer tracer;
  if (rs.trace) disp.set_tracer(&tracer);
  fleet.start();

  TraceRunOutput out;
  sim.spawn(feed(sim, disp, rs));
  sim.spawn(settle(disp, out, sim));
  sim.run_until(sim::seconds(60.0));

  out.stats = disp.stats();
  out.records = tracer.records();
  out.drops = tracer.drops();
  out.live = tracer.live();
  out.placements = disp.placements();
  std::ostringstream spans_os;
  tracer.write_json(spans_os);
  out.span_json = spans_os.str();
  obs::MetricsRegistry m;
  disp.export_metrics(m);
  std::ostringstream metrics_os;
  m.write_json(metrics_os);
  out.metrics_json = metrics_os.str();
  fleet.shutdown();
  return out;
}

sim::Duration bucket_sum(const RequestTracer::Record& r) {
  sim::Duration sum = 0;
  for (const sim::Duration d : r.buckets) sum += d;
  return sum;
}

/// The invariants every traced run must satisfy: exactly-once resolution
/// (one record per admitted request, one drop entry per refusal), the
/// bucket-sum tiling identity, and internally consistent spans.
void expect_trace_invariants(const TraceRunOutput& out, const char* what) {
  ASSERT_TRUE(out.done) << what;
  EXPECT_EQ(out.live, 0u) << what;  // drained: nothing unresolved
  EXPECT_EQ(static_cast<std::int64_t>(out.records.size()),
            out.stats.admitted)
      << what;
  EXPECT_EQ(static_cast<std::int64_t>(out.drops.size()), out.stats.dropped)
      << what;
  for (const RequestTracer::Record& r : out.records) {
    // The tiling identity, exact in integer picoseconds.
    EXPECT_EQ(bucket_sum(r), r.done - r.arrival) << what << " uid " << r.uid;
    EXPECT_GE(r.attempts, 1) << what << " uid " << r.uid;
    // Spans cover exactly the non-zero bucket time, in clock order, with
    // 1-based non-decreasing hop numbers.
    sim::Duration span_sum = 0;
    sim::Time prev_start = r.arrival;
    std::int32_t prev_attempt = 1;
    for (const RequestTracer::PhaseSpan& s : r.spans) {
      EXPECT_GT(s.end, s.start) << what << " uid " << r.uid;
      EXPECT_GE(s.start, prev_start) << what << " uid " << r.uid;
      EXPECT_GE(s.attempt, prev_attempt) << what << " uid " << r.uid;
      EXPECT_LE(s.attempt, r.attempts) << what << " uid " << r.uid;
      span_sum += s.end - s.start;
      prev_start = s.start;
      prev_attempt = s.attempt;
    }
    EXPECT_EQ(span_sum, r.done - r.arrival) << what << " uid " << r.uid;
    if (r.terminal == Terminal::kCompleted) {
      EXPECT_TRUE(r.cause.empty()) << what << " uid " << r.uid;
    } else {
      EXPECT_FALSE(r.cause.empty()) << what << " uid " << r.uid;
    }
  }
}

std::int64_t count_terminal(const TraceRunOutput& out, Terminal t) {
  return std::count_if(
      out.records.begin(), out.records.end(),
      [t](const RequestTracer::Record& r) { return r.terminal == t; });
}

// --- lifecycles ---------------------------------------------------------------

TEST(RequestTracer, CleanRunIsSingleHopAndFullyAttributed) {
  TraceRunSpec rs;
  const TraceRunOutput out = run_traced_cluster(rs);
  expect_trace_invariants(out, "clean");
  EXPECT_EQ(count_terminal(out, Terminal::kCompleted), out.stats.completed);
  EXPECT_EQ(out.stats.completed, out.stats.admitted);
  for (const RequestTracer::Record& r : out.records) {
    EXPECT_EQ(r.attempts, 1);
    EXPECT_EQ(r.buckets[static_cast<int>(Phase::kRetryBackoff)], 0);
    // A clean single-hop request always pays the staged phases.
    EXPECT_GT(r.buckets[static_cast<int>(Phase::kH2d)], 0);
    EXPECT_GT(r.buckets[static_cast<int>(Phase::kExec)], 0);
    EXPECT_GT(r.buckets[static_cast<int>(Phase::kD2h)], 0);
  }
}

TEST(RequestTracer, RetriedRequestsLinkAttemptHopsWithBackoff) {
  TraceRunSpec rs;
  rs.faults = "task:0.25";
  const TraceRunOutput out = run_traced_cluster(rs);
  expect_trace_invariants(out, "retries");
  ASSERT_GT(out.stats.retries, 0);
  std::int64_t multi_hop = 0;
  for (const RequestTracer::Record& r : out.records) {
    if (r.attempts < 2) continue;
    ++multi_hop;
    // A budget-charged retry pays a backoff interval, and the span list
    // carries every hop (linked attempt spans, one chain per request).
    EXPECT_GT(r.buckets[static_cast<int>(Phase::kRetryBackoff)], 0)
        << "uid " << r.uid;
    std::int32_t max_attempt = 0;
    bool saw_backoff = false;
    for (const RequestTracer::PhaseSpan& s : r.spans) {
      max_attempt = std::max(max_attempt, s.attempt);
      saw_backoff |= s.phase == Phase::kRetryBackoff;
    }
    EXPECT_EQ(max_attempt, r.attempts) << "uid " << r.uid;
    EXPECT_TRUE(saw_backoff) << "uid " << r.uid;
  }
  EXPECT_GT(multi_hop, 0);
}

TEST(RequestTracer, BudgetExhaustionEndsInAShedRecordWithCause) {
  TraceRunSpec rs;
  rs.faults = "task:0.2";
  rs.retry_budget = 0;
  const TraceRunOutput out = run_traced_cluster(rs);
  expect_trace_invariants(out, "shed");
  ASSERT_GT(out.stats.shed, 0);
  EXPECT_EQ(count_terminal(out, Terminal::kShed), out.stats.shed);
  for (const RequestTracer::Record& r : out.records) {
    if (r.terminal != Terminal::kShed) continue;
    EXPECT_EQ(r.cause, "task_fault");
    // The failed attempt's execution time is attributed, not lost.
    EXPECT_GT(r.buckets[static_cast<int>(Phase::kExec)], 0);
  }
}

TEST(RequestTracer, EvictedRequestGetsATerminalEvictionRecord) {
  // Overloaded single node, tiny bounded queue, urgency-ordered admission:
  // interactive arrivals evict parked batch requests (try_evict_for).
  TraceRunSpec rs;
  rs.nodes = 1;
  rs.requests = 256;
  rs.arrival_rate = 600.0e3;
  rs.queue_limit = 4;
  rs.rows_per_column = 1;  // shallow TaskTable: the backlog parks up here
  rs.sched_kind = sched::PolicyKind::kEdf;
  rs.mixed_classes = true;
  const TraceRunOutput out = run_traced_cluster(rs);
  expect_trace_invariants(out, "evictions");
  ASSERT_GT(out.stats.evicted, 0);
  EXPECT_EQ(count_terminal(out, Terminal::kEvicted), out.stats.evicted);
  for (const RequestTracer::Record& r : out.records) {
    if (r.terminal != Terminal::kEvicted) continue;
    EXPECT_EQ(r.cause, "evicted");
    // The victim was parked at admission when displaced: its wait is
    // charged to admission_block and it never reached the device.
    EXPECT_GT(r.buckets[static_cast<int>(Phase::kAdmissionBlock)], 0);
    EXPECT_EQ(r.buckets[static_cast<int>(Phase::kExec)], 0);
  }
  // A bounded queue under overload also refuses offers outright; each
  // refusal is a Drop entry keyed by offer ordinal, not a Record.
  EXPECT_EQ(static_cast<std::int64_t>(out.drops.size()), out.stats.dropped);
}

TEST(RequestTracer, WedgeTimeoutWaitLandsInExec) {
  TraceRunSpec rs;
  rs.faults = "wedge:0.1";
  rs.task_timeout = sim::microseconds(1500.0);
  const TraceRunOutput out = run_traced_cluster(rs);
  expect_trace_invariants(out, "wedges");
  ASSERT_GT(out.stats.detected_timeouts, 0);
  // Wedged attempts sit invisible until the deadline fires; that wait is
  // execution time of the doomed attempt, so some retried record's exec
  // bucket spans at least the full timeout.
  bool saw_timeout_exec = false;
  for (const RequestTracer::Record& r : out.records) {
    if (r.attempts >= 2 &&
        r.buckets[static_cast<int>(Phase::kExec)] >= rs.task_timeout) {
      saw_timeout_exec = true;
    }
  }
  EXPECT_TRUE(saw_timeout_exec);
}

// --- chaos soak property test -------------------------------------------------

TEST(RequestTracerChaos, TilingHoldsUnderRandomizedFaultPlans) {
  // Randomized fault plans over 20 seeds (rates, crash node/timing/recovery
  // all seed-derived): whatever the lifecycle — retries, wedges, crashes,
  // budget-free redispatch sweeps — every terminal record must tile
  // exactly and every admitted request must resolve exactly once.
  for (int s = 0; s < 20; ++s) {
    const std::uint64_t seed = 0xBEEF + static_cast<std::uint64_t>(s);
    const double task_rate =
        static_cast<double>(hash_index(seed, 1) % 30) / 100.0;
    const double wedge_rate =
        static_cast<double>(hash_index(seed, 2) % 6) / 100.0;
    const double xfer_rate =
        static_cast<double>(hash_index(seed, 3) % 10) / 100.0;
    const int crash_node = static_cast<int>(hash_index(seed, 4) % 2);
    const bool crash = (hash_index(seed, 5) % 4) != 0;
    const bool recover = (hash_index(seed, 6) % 2) != 0;
    std::ostringstream spec;
    spec << "task:" << task_rate << ",wedge:" << wedge_rate
         << ",xfer:" << xfer_rate;
    if (crash) {
      spec << ",crash:" << crash_node << ":"
           << 100 + hash_index(seed, 7) % 400;
      if (recover) spec << ":" << 300 + hash_index(seed, 8) % 300;
    }
    TraceRunSpec rs;
    rs.seed = seed;
    rs.faults = spec.str();
    rs.task_timeout = sim::microseconds(1500.0);
    rs.retry_budget = static_cast<int>(hash_index(seed, 9) % 4);
    const TraceRunOutput out = run_traced_cluster(rs);
    expect_trace_invariants(out, rs.faults.c_str());
    EXPECT_EQ(count_terminal(out, Terminal::kCompleted), out.stats.completed)
        << rs.faults;
    EXPECT_EQ(count_terminal(out, Terminal::kShed) +
                  count_terminal(out, Terminal::kEvicted),
              out.stats.shed)
        << rs.faults;
  }
}

// --- determinism and passivity ------------------------------------------------

TEST(RequestTracer, SpanDumpIsByteIdenticalAcrossRuns) {
  TraceRunSpec rs;
  rs.faults = "task:0.2,wedge:0.05,crash:1:300:500";
  rs.task_timeout = sim::microseconds(1500.0);
  rs.requests = 96;
  const TraceRunOutput a = run_traced_cluster(rs);
  const TraceRunOutput b = run_traced_cluster(rs);
  expect_trace_invariants(a, "run a");
  EXPECT_GT(a.stats.retries, 0);
  EXPECT_EQ(a.span_json, b.span_json);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_NE(a.span_json.find("\"format\":\"pagoda-trace-spans-v1\""),
            std::string::npos);
}

TEST(RequestTracer, TracingIsPassive) {
  // The tracer only reads simulation state: an armed run must be
  // event-for-event identical to a disarmed one — same metrics, same
  // placements, same virtual end time.
  TraceRunSpec rs;
  rs.faults = "task:0.2,wedge:0.05";
  rs.task_timeout = sim::microseconds(1500.0);
  const TraceRunOutput armed = run_traced_cluster(rs);
  rs.trace = false;
  const TraceRunOutput disarmed = run_traced_cluster(rs);
  EXPECT_EQ(armed.metrics_json, disarmed.metrics_json);
  EXPECT_EQ(armed.placements, disarmed.placements);
  EXPECT_EQ(armed.end_time, disarmed.end_time);
  EXPECT_TRUE(disarmed.records.empty());
}

// --- attribution helpers ------------------------------------------------------

TEST(Attribution, DominantPhaseAndCriticalPath) {
  std::array<double, kNumPhases> b{};
  EXPECT_EQ(dominant_phase_index(b), -1);  // all-zero: no dominant phase
  b[static_cast<int>(Phase::kSchedWait)] = 5.0;
  b[static_cast<int>(Phase::kExec)] = 3.0;
  EXPECT_EQ(dominant_phase_index(b), static_cast<int>(Phase::kSchedWait));

  // critical_path coalesces adjacent same-phase spans of one record.
  RequestTracer::Record r;
  r.spans = {{1, Phase::kH2d, 0, 0, 10}, {1, Phase::kExec, 0, 10, 30},
             {2, Phase::kExec, 0, 30, 40}, {2, Phase::kD2h, 0, 40, 45}};
  const auto path = critical_path(r);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0].first, Phase::kH2d);
  EXPECT_EQ(path[0].second, 10);
  EXPECT_EQ(path[1].first, Phase::kExec);
  EXPECT_EQ(path[1].second, 30);  // 20 + 10 coalesced across the hop seam
  EXPECT_EQ(path[2].first, Phase::kD2h);
  EXPECT_EQ(path[2].second, 5);
}

TEST(Attribution, ReportValidatesTheTilingInvariant) {
  AttributionReport report;
  RequestSummary s;
  s.uid = 1;
  s.cls = "standard";
  s.terminal = "completed";
  s.e2e_us = 10.0;
  s.buckets_us[static_cast<int>(Phase::kExec)] = 6.0;
  s.buckets_us[static_cast<int>(Phase::kH2d)] = 4.0;
  report.add(s);
  std::string err;
  EXPECT_TRUE(report.validate(&err)) << err;
  s.uid = 2;
  s.e2e_us = 12.0;  // buckets still sum to 10: must be rejected
  report.add(s);
  EXPECT_FALSE(report.validate(&err));
  EXPECT_NE(err.find("uid=2"), std::string::npos);
}

// --- Perfetto export ----------------------------------------------------------

TEST(RequestTracer, TimelineExportCarriesHopsFlowsAndRequestRows) {
  TraceRunSpec rs;
  rs.faults = "task:0.25";
  rs.requests = 48;
  sim::Simulation sim;
  std::vector<cluster::NodeConfig> nodes(2);
  cluster::Cluster fleet(sim, nodes);
  cluster::DispatcherConfig dc;
  std::string err;
  dc.faults = *fault::FaultPlan::parse(rs.faults, &err);
  dc.faults.seed = rs.seed;
  dc.retry.seed = rs.seed;
  cluster::Dispatcher disp(fleet, cluster::make_policy(rs.policy), dc);
  RequestTracer tracer;
  disp.set_tracer(&tracer);
  fleet.start();
  TraceRunOutput out;
  sim.spawn(feed(sim, disp, rs));
  sim.spawn(settle(disp, out, sim));
  sim.run_until(sim::seconds(60.0));
  ASSERT_TRUE(out.done);
  fleet.shutdown();

  Timeline tl;
  tracer.export_to_timeline(tl);
  // One request-level async row per record, with class args attached.
  EXPECT_EQ(tl.num_async_spans(), tracer.records().size());
  // Hop roots plus phase children land on per-node tracks.
  EXPECT_GT(tl.num_spans(), tracer.records().size());
  // Retried requests emit flow arrows joining consecutive hops: one
  // tail + one head per seam.
  std::int64_t seams = 0;
  for (const RequestTracer::Record& r : tracer.records()) {
    seams += r.attempts - 1;
  }
  ASSERT_GT(seams, 0);
  EXPECT_EQ(tl.num_flows(), static_cast<std::size_t>(2 * seams));
  std::ostringstream os;
  tl.write_chrome_trace(os);
  const std::string trace = os.str();
  EXPECT_NE(trace.find(R"("ph":"s")"), std::string::npos);
  EXPECT_NE(trace.find(R"("ph":"b")"), std::string::npos);
  EXPECT_NE(trace.find("req.dev00"), std::string::npos);
}

// --- timeline event cap (satellite: bounded buffers, counted drops) -----------

TEST(Timeline, EventCapDropsAreCountedNeverSilent) {
  Timeline tl;
  tl.set_max_events(4);
  for (int i = 0; i < 6; ++i) {
    tl.span(tl.track("t"), "s", i * 10, i * 10 + 5);
  }
  EXPECT_EQ(tl.num_events(), 4u);
  EXPECT_EQ(tl.dropped_events(), 2);
  // Every event kind honours the cap.
  tl.instant(tl.track("t"), "i", 100);
  tl.counter("c", 100, 1.0);
  tl.flow(tl.track("t"), "f", 1, 100, true);
  tl.async_span("a", 1, 0, 10);
  EXPECT_EQ(tl.num_events(), 4u);
  EXPECT_EQ(tl.dropped_events(), 6);
  // The writer still produces a well-formed trace from what was kept.
  std::ostringstream os;
  tl.write_chrome_trace(os);
  EXPECT_EQ(os.str().back(), '\n');
  // clear() resets the drop counter along with the buffers.
  tl.clear();
  EXPECT_EQ(tl.dropped_events(), 0);
  EXPECT_TRUE(tl.empty());
}

}  // namespace
}  // namespace pagoda::obs
