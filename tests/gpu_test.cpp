// Tests for the GPU device model: kernel coroutines, barriers, occupancy,
// the native threadblock dispatcher, streams, and the PCIe bus.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "gpu/device.h"
#include "gpu/kernel.h"
#include "gpu/occupancy.h"
#include "gpu/stream.h"
#include "sim/process.h"

namespace pagoda::gpu {
namespace {

using sim::Simulation;

// --- occupancy (paper §2 arithmetic) ----------------------------------------

TEST(Occupancy, SingleNarrowTaskIsHalfPercent) {
  const GpuSpec spec = GpuSpec::titan_x();
  // One 256-thread task = 8 warps; paper: (8/(64*24)) = 0.52%.
  const auto f = BlockFootprint::of(256, 32, 0);
  EXPECT_NEAR(device_occupancy(spec, f, 1) * 100.0, 0.52, 0.01);
}

TEST(Occupancy, HyperQThirtyTwoTasksIsSixteenPercent) {
  const GpuSpec spec = GpuSpec::titan_x();
  const auto f = BlockFootprint::of(256, 32, 0);
  // Paper: (8*32/(64*24)) = 16.67%.
  EXPECT_NEAR(device_occupancy(spec, f, 32) * 100.0, 16.67, 0.01);
}

TEST(Occupancy, MaxResidencyRespectsAllLimits) {
  const GpuSpec spec = GpuSpec::titan_x();
  // 1024-thread blocks: limited by 2048 threads/SMM -> 2 blocks.
  EXPECT_EQ(max_residency(spec, BlockFootprint::of(1024, 32, 0)).blocks_per_smm,
            2);
  // 32 regs * 1024 threads = 32K regs -> 2 blocks by registers too.
  // 33 regs * 1024 = 33792 -> 64K/33792 = 1 block.
  EXPECT_EQ(max_residency(spec, BlockFootprint::of(1024, 33, 0)).blocks_per_smm,
            1);
  // Shared memory: 48KB per block on a 96KB SMM -> 2 blocks.
  EXPECT_EQ(
      max_residency(spec, BlockFootprint::of(64, 32, 48 * 1024)).blocks_per_smm,
      2);
  // Tiny blocks: limited by the 32-block cap.
  EXPECT_EQ(max_residency(spec, BlockFootprint::of(32, 16, 0)).blocks_per_smm,
            32);
  // Full MasterKernel threadblock: 1024 threads, 32 regs, 32KB -> 2 blocks
  // (100% occupancy: 2 blocks * 32 warps = 64 warps).
  const auto mtb = max_residency(spec, BlockFootprint::of(1024, 32, 32 * 1024));
  EXPECT_EQ(mtb.blocks_per_smm, 2);
  EXPECT_NEAR(mtb.occupancy, 1.0, 1e-12);
}

// --- kernel coroutines -------------------------------------------------------

struct AxpyArgs {
  const float* x;
  float* y;
  float a;
  int n;
};

KernelCoro axpy_kernel(WarpCtx& ctx) {
  const auto& args = ctx.args_as<AxpyArgs>();
  for (int lane = 0; lane < ctx.active_lanes(); ++lane) {
    const int tid = ctx.tid(lane);
    if (tid < args.n && ctx.compute()) {
      args.y[tid] += args.a * args.x[tid];
    }
  }
  ctx.charge(2 * ctx.costs().global_access + ctx.costs().alu);
  ctx.charge_stall(2 * ctx.costs().global_stall);
  co_return;
}

TEST(KernelCoro, SegmentsAccumulateCharges) {
  WarpCtx ctx;
  ctx.threads_per_block = 32;
  ctx.num_blocks = 1;
  std::vector<float> x(32, 2.0f);
  std::vector<float> y(32, 1.0f);
  const AxpyArgs args{x.data(), y.data(), 3.0f, 32};
  ctx.args = &args;
  KernelCoro coro = axpy_kernel(ctx);
  const SegmentResult seg = run_segment(coro, ctx);
  EXPECT_FALSE(seg.at_barrier);
  EXPECT_DOUBLE_EQ(seg.cycles, 5.0);
  EXPECT_DOUBLE_EQ(seg.stall_cycles, 48.0);
  for (float v : y) EXPECT_FLOAT_EQ(v, 7.0f);
}

TEST(KernelCoro, ModelModeSkipsComputationButCharges) {
  WarpCtx ctx;
  ctx.threads_per_block = 32;
  ctx.num_blocks = 1;
  ctx.mode = ExecMode::Model;
  std::vector<float> y(32, 1.0f);
  const AxpyArgs args{nullptr, y.data(), 3.0f, 32};
  ctx.args = &args;
  KernelCoro coro = axpy_kernel(ctx);
  const SegmentResult seg = run_segment(coro, ctx);
  EXPECT_DOUBLE_EQ(seg.cycles, 5.0);
  EXPECT_DOUBLE_EQ(seg.stall_cycles, 48.0);
  for (float v : y) EXPECT_FLOAT_EQ(v, 1.0f);  // untouched
}

TEST(KernelCoro, ActiveLanesHandlesPartialWarps) {
  WarpCtx ctx;
  ctx.threads_per_block = 48;
  ctx.warp_in_block = 0;
  EXPECT_EQ(ctx.active_lanes(), 32);
  ctx.warp_in_block = 1;
  EXPECT_EQ(ctx.active_lanes(), 16);
  ctx.warp_in_block = 2;
  EXPECT_EQ(ctx.active_lanes(), 0);
}

// A two-phase kernel with a block barrier: phase 1 writes shared memory,
// phase 2 reads a neighbor warp's value. Catches barrier misbehavior
// functionally, not just in timing.
struct ShArgs {
  int* out;  // one per warp
};

KernelCoro barrier_kernel(WarpCtx& ctx) {
  auto sh = ctx.shared_as<int>();
  if (ctx.compute()) sh[static_cast<size_t>(ctx.warp_in_block)] = ctx.warp_in_block + 100;
  ctx.charge(1);
  co_await ctx.sync_block();
  const int warps = (ctx.threads_per_block + 31) / 32;
  const int neighbor = (ctx.warp_in_block + 1) % warps;
  if (ctx.compute()) {
    ctx.args_as<ShArgs>().out[ctx.warp_in_block] = sh[static_cast<size_t>(neighbor)];
  }
  ctx.charge(1);
  co_return;
}

sim::Process launch_and_wait(Device& dev, KernelLaunchParams params,
                             sim::Time& done_at) {
  KernelExecutionPtr exec = dev.dispatcher().launch(std::move(params));
  co_await exec->done.wait();
  done_at = dev.sim().now();
}

TEST(BlockDispatcher, BarrierKernelSeesNeighborWrites) {
  Simulation sim;
  Device dev(sim, GpuSpec::titan_x());
  std::vector<int> out(4, -1);
  const ShArgs args{out.data()};
  KernelLaunchParams p;
  p.fn = barrier_kernel;
  p.args = KernelLaunchParams::pack_args(args);
  p.threads_per_block = 128;  // 4 warps
  p.num_blocks = 1;
  p.shared_mem_bytes = 64;
  sim::Time done_at = -1;
  sim.spawn(launch_and_wait(dev, std::move(p), done_at));
  sim.run();
  EXPECT_EQ(out, (std::vector<int>{101, 102, 103, 100}));
  EXPECT_GT(done_at, 0);
}

// Charged cycles translate into pipeline time: 1 warp, C cycles, no
// contention -> C / clock seconds.
KernelCoro charge_kernel(WarpCtx& ctx) {
  ctx.charge(1000.0);
  co_return;
}

TEST(BlockDispatcher, LoneWarpRunsAtOneInstructionPerCycle) {
  Simulation sim;
  Device dev(sim, GpuSpec::titan_x());
  KernelLaunchParams p;
  p.fn = charge_kernel;
  p.threads_per_block = 32;
  p.num_blocks = 1;
  sim::Time done_at = -1;
  sim.spawn(launch_and_wait(dev, std::move(p), done_at));
  sim.run();
  EXPECT_EQ(done_at, sim::nanoseconds(1000));  // 1000 cycles at 1 GHz
}

TEST(BlockDispatcher, SaturatedSmmSharesIssueWidth) {
  Simulation sim;
  GpuSpec spec = GpuSpec::titan_x();
  spec.num_smms = 1;  // force contention on one SMM
  Device dev(sim, spec);
  // 8 warps of 1000 cycles each on issue width 4: total work 8000
  // warp-cycles at 4/cycle = 2000 cycles.
  KernelLaunchParams p;
  p.fn = charge_kernel;
  p.threads_per_block = 256;  // 8 warps
  p.num_blocks = 1;
  sim::Time done_at = -1;
  sim.spawn(launch_and_wait(dev, std::move(p), done_at));
  sim.run();
  EXPECT_EQ(done_at, sim::nanoseconds(2000));
}

TEST(BlockDispatcher, BlocksQueueWhenDeviceFull) {
  Simulation sim;
  GpuSpec spec = GpuSpec::titan_x();
  spec.num_smms = 1;
  Device dev(sim, spec);
  // 3 blocks of 1024 threads: only 2 fit (2048 threads/SMM); the third
  // waits for a whole block to retire (threadblock-level scheduling).
  KernelLaunchParams p;
  p.fn = charge_kernel;
  p.threads_per_block = 1024;
  p.num_blocks = 3;
  sim::Time done_at = -1;
  sim.spawn(launch_and_wait(dev, std::move(p), done_at));
  sim.run();
  // Phase 1: 64 warps of 1000 cycles at 4/cycle = 16000 cycles.
  // Phase 2: remaining 32 warps: 32*1000/4 = 8000 cycles.
  EXPECT_EQ(done_at, sim::nanoseconds(24000));
}

TEST(BlockDispatcher, ConcurrentKernelsBackfill) {
  Simulation sim;
  GpuSpec spec = GpuSpec::titan_x();
  spec.num_smms = 1;
  Device dev(sim, spec);
  // Kernel A occupies 32 warps; kernel B (32 warps) backfills concurrently.
  KernelLaunchParams a;
  a.fn = charge_kernel;
  a.threads_per_block = 1024;
  a.num_blocks = 1;
  KernelLaunchParams b = a;
  sim::Time a_done = -1;
  sim::Time b_done = -1;
  sim.spawn(launch_and_wait(dev, std::move(a), a_done));
  sim.spawn(launch_and_wait(dev, std::move(b), b_done));
  sim.run();
  // Both resident together: 64 warps * 1000 cycles / 4 = 16000 cycles.
  EXPECT_EQ(a_done, sim::nanoseconds(16000));
  EXPECT_EQ(b_done, sim::nanoseconds(16000));
}

TEST(Device, AchievedOccupancyTracksResidency) {
  Simulation sim;
  GpuSpec spec = GpuSpec::titan_x();
  spec.num_smms = 1;
  Device dev(sim, spec);
  KernelLaunchParams p;
  p.fn = charge_kernel;
  p.threads_per_block = 1024;  // 32 of 64 warp slots
  p.num_blocks = 1;
  sim::Time done_at = -1;
  sim.spawn(launch_and_wait(dev, std::move(p), done_at));
  sim.run();
  EXPECT_NEAR(dev.achieved_occupancy(), 0.5, 0.01);
}

// --- streams & PCIe ----------------------------------------------------------

sim::Process stream_user(Device& dev, sim::Time& copied_at,
                         sim::Time& kernel_at, std::vector<float>& host,
                         DeviceBuffer& dbuf) {
  Stream s(dev);
  s.memcpy_async(pcie::Direction::HostToDevice, dbuf.data(), host.data(),
                 host.size() * sizeof(float));
  auto t1 = s.record_event();
  co_await t1->wait();
  copied_at = dev.sim().now();

  KernelLaunchParams p;
  p.fn = charge_kernel;
  p.threads_per_block = 32;
  p.num_blocks = 1;
  auto t2 = s.kernel_async(std::move(p));
  co_await s.synchronize();
  kernel_at = dev.sim().now();
  EXPECT_TRUE(t2->fired());
}

TEST(Stream, OrdersMemcpyThenKernel) {
  Simulation sim;
  Device dev(sim, GpuSpec::titan_x());
  std::vector<float> host(1024);
  std::iota(host.begin(), host.end(), 0.0f);
  DeviceBuffer dbuf = dev.memory().allocate(host.size() * sizeof(float));
  sim::Time copied_at = -1;
  sim::Time kernel_at = -1;
  sim.spawn(stream_user(dev, copied_at, kernel_at, host, dbuf));
  sim.run();
  // Copy: 2us DMA latency + 4096B / 12GB/s ≈ 341ns.
  EXPECT_GT(copied_at, sim::microseconds(2));
  EXPECT_LT(copied_at, sim::microseconds(3));
  // Kernel runs after the copy: 1000 cycles more.
  EXPECT_EQ(kernel_at, copied_at + sim::nanoseconds(1000));
  // Data actually landed.
  EXPECT_EQ(dbuf.as<float>()[1023], 1023.0f);
}

TEST(DeviceMemory, EnforcesCapacityAndFrees) {
  Simulation sim;
  Device dev(sim, GpuSpec::titan_x(), pcie::PcieConfig{},
             /*memory_bytes=*/1024);
  EXPECT_EQ(dev.memory().outstanding_bytes(), 0);
  {
    DeviceBuffer a = dev.memory().allocate(512);
    DeviceBuffer b = dev.memory().allocate(512);
    EXPECT_EQ(dev.memory().outstanding_bytes(), 1024);
  }
  EXPECT_EQ(dev.memory().outstanding_bytes(), 0);
  EXPECT_DEATH(
      {
        DeviceBuffer a = dev.memory().allocate(1000);
        DeviceBuffer b = dev.memory().allocate(1000);
      },
      "device out of memory");
}

}  // namespace
}  // namespace pagoda::gpu
