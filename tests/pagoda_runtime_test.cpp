// End-to-end tests of the Pagoda runtime: the TaskTable spawning protocol,
// MasterKernel scheduling, shared memory, named barriers, and the public
// API semantics of paper Table 1.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "gpu/device.h"
#include "pagoda/runtime.h"
#include "sim/process.h"

namespace pagoda::runtime {
namespace {

using gpu::Device;
using gpu::GpuSpec;
using gpu::KernelCoro;
using gpu::WarpCtx;
using sim::Simulation;

// Writes tid*10+7 into out[tid]; exercises getTid across blocks/warps.
struct TidArgs {
  int* out;
  int n;
};

KernelCoro tid_kernel(WarpCtx& ctx) {
  const auto& a = ctx.args_as<TidArgs>();
  for (int lane = 0; lane < ctx.active_lanes(); ++lane) {
    const int tid = ctx.tid(lane);
    if (tid < a.n && ctx.compute()) a.out[tid] = tid * 10 + 7;
  }
  ctx.charge(ctx.costs().alu + ctx.costs().global_access);
  ctx.charge_stall(ctx.costs().global_stall);
  co_return;
}

// Block-wide sum via shared memory + syncBlock; out[block] = sum of tids.
struct ReduceArgs {
  long long* out;  // one per block
};

KernelCoro reduce_kernel(WarpCtx& ctx) {
  auto partials = ctx.shared_as<long long>();
  const int warps = (ctx.threads_per_block + 31) / 32;
  if (ctx.compute()) {
    long long local = 0;
    for (int lane = 0; lane < ctx.active_lanes(); ++lane) {
      local += ctx.tid(lane);
    }
    partials[static_cast<std::size_t>(ctx.warp_in_block)] = local;
  }
  ctx.charge(ctx.costs().alu * 4 + ctx.costs().shared_access);
  co_await ctx.sync_block();
  if (ctx.warp_in_block == 0) {
    if (ctx.compute()) {
      long long total = 0;
      for (int w = 0; w < warps; ++w) total += partials[static_cast<std::size_t>(w)];
      ctx.args_as<ReduceArgs>().out[ctx.block_index] = total;
    }
    ctx.charge(ctx.costs().shared_access * warps + ctx.costs().global_access);
    ctx.charge_stall(ctx.costs().global_stall);
  }
  co_return;
}

TaskParams make_tid_task(int* out, int n, int threads_per_block,
                         int num_blocks) {
  TaskParams p;
  p.fn = tid_kernel;
  p.threads_per_block = threads_per_block;
  p.num_blocks = num_blocks;
  p.set_args(TidArgs{out, n});
  return p;
}

// --- single task lifecycle ---------------------------------------------------

sim::Process spawn_one_and_wait(Runtime& rt, TaskParams params, bool use_wait,
                                bool& completed) {
  const TaskHandle h = co_await rt.task_spawn(std::move(params));
  EXPECT_TRUE(h.valid());
  EXPECT_GE(h.id, kFirstTaskId);  // taskIDs are integers > 1 (paper §3)
  if (use_wait) {
    co_await rt.wait(h);
  } else {
    co_await rt.wait_all();
  }
  EXPECT_TRUE(rt.check(h));
  completed = true;
}

class PagodaSingleTask : public ::testing::TestWithParam<bool> {};

TEST_P(PagodaSingleTask, RunsViaFlushPath) {
  // A lone task has no successor to release it: only the CPU flush path
  // (copy back, see (-1,0), write (1,1)) can start it.
  Simulation sim;
  Device dev(sim, GpuSpec::titan_x());
  Runtime rt(dev);
  rt.start();
  std::vector<int> out(128, -1);
  bool completed = false;
  sim.spawn(spawn_one_and_wait(rt, make_tid_task(out.data(), 128, 128, 1),
                               GetParam(), completed));
  sim.run_until(sim::milliseconds(50));
  ASSERT_TRUE(completed);
  for (int i = 0; i < 128; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i * 10 + 7);
  EXPECT_EQ(rt.stats().tasks_spawned, 1);
  EXPECT_EQ(rt.stats().flushes, 1);
  EXPECT_EQ(rt.master_kernel().tasks_completed(), 1);
  rt.shutdown();
}

INSTANTIATE_TEST_SUITE_P(WaitVariants, PagodaSingleTask,
                         ::testing::Values(true, false));

// --- many tasks: pipelined releases ------------------------------------------

sim::Process spawn_many(Runtime& rt, std::vector<int>& out, int num_tasks,
                        int threads_per_task, bool& done) {
  for (int t = 0; t < num_tasks; ++t) {
    co_await rt.task_spawn(make_tid_task(
        out.data() + t * threads_per_task, threads_per_task,
        threads_per_task, 1));
  }
  co_await rt.wait_all();
  done = true;
}

TEST(PagodaRuntime, ManyTasksAllExecuteExactlyOnce) {
  Simulation sim;
  Device dev(sim, GpuSpec::titan_x());
  Runtime rt(dev);
  rt.start();
  constexpr int kTasks = 500;
  constexpr int kThreads = 96;
  std::vector<int> out(kTasks * kThreads, -1);
  bool done = false;
  sim.spawn(spawn_many(rt, out, kTasks, kThreads, done));
  sim.run_until(sim::seconds(2.0));
  ASSERT_TRUE(done);
  for (int t = 0; t < kTasks; ++t) {
    for (int i = 0; i < kThreads; ++i) {
      ASSERT_EQ(out[static_cast<std::size_t>(t * kThreads + i)], i * 10 + 7)
          << "task " << t << " tid " << i;
    }
  }
  EXPECT_EQ(rt.master_kernel().tasks_completed(), kTasks);
  // Steady state: one entry copy per task, plus one per flush.
  EXPECT_EQ(rt.stats().entry_copies,
            rt.stats().tasks_spawned + rt.stats().flushes);
  rt.shutdown();
}

TEST(PagodaRuntime, TableOverflowRecyclesEntries) {
  // More tasks than TaskTable entries (48 columns x 32 rows = 1536 on the
  // full Titan X config): forces aggregate copy-backs and entry recycling.
  Simulation sim;
  GpuSpec spec = GpuSpec::titan_x();
  spec.num_smms = 2;  // 4 MTBs x 32 rows = 128 entries
  Device dev(sim, spec);
  Runtime rt(dev);
  rt.start();
  constexpr int kTasks = 700;
  constexpr int kThreads = 64;
  std::vector<int> out(kTasks * kThreads, -1);
  bool done = false;
  sim.spawn(spawn_many(rt, out, kTasks, kThreads, done));
  sim.run_until(sim::seconds(5.0));
  ASSERT_TRUE(done);
  EXPECT_EQ(rt.master_kernel().tasks_completed(), kTasks);
  EXPECT_GT(rt.stats().aggregate_copybacks, 0);
  for (int t = 0; t < kTasks; ++t) {
    for (int i = 0; i < kThreads; ++i) {
      ASSERT_EQ(out[static_cast<std::size_t>(t * kThreads + i)], i * 10 + 7);
    }
  }
  rt.shutdown();
}

// --- shared memory + syncBlock ------------------------------------------------

sim::Process spawn_reduce_tasks(Runtime& rt, std::vector<long long>& out,
                                int num_tasks, int threads, int blocks,
                                bool& done) {
  for (int t = 0; t < num_tasks; ++t) {
    TaskParams p;
    p.fn = reduce_kernel;
    p.threads_per_block = threads;
    p.num_blocks = blocks;
    p.needs_sync = true;
    p.shared_mem_bytes =
        static_cast<std::int32_t>(sizeof(long long)) * ((threads + 31) / 32);
    p.set_args(ReduceArgs{out.data() + t * blocks});
    co_await rt.task_spawn(p);
  }
  co_await rt.wait_all();
  done = true;
}

TEST(PagodaRuntime, SharedMemoryReductionAcrossBlocks) {
  Simulation sim;
  Device dev(sim, GpuSpec::titan_x());
  Runtime rt(dev);
  rt.start();
  constexpr int kTasks = 100;
  constexpr int kThreads = 256;
  constexpr int kBlocks = 3;
  std::vector<long long> out(kTasks * kBlocks, -1);
  bool done = false;
  sim.spawn(spawn_reduce_tasks(rt, out, kTasks, kThreads, kBlocks, done));
  sim.run_until(sim::seconds(2.0));
  ASSERT_TRUE(done);
  // Block b of any task sums tids [b*256, (b+1)*256).
  for (int t = 0; t < kTasks; ++t) {
    for (int b = 0; b < kBlocks; ++b) {
      const long long lo = static_cast<long long>(b) * kThreads;
      const long long expected = (lo + lo + kThreads - 1) * kThreads / 2;
      ASSERT_EQ(out[static_cast<std::size_t>(t * kBlocks + b)], expected)
          << "task " << t << " block " << b;
    }
  }
  EXPECT_GT(rt.master_kernel().shmem_blocks_swept(), 0);
  rt.shutdown();
}

TEST(PagodaRuntime, NamedBarrierPoolRecyclesPast16Blocks) {
  // One MTB has 16 named barriers; a task with 32 synchronizing blocks in
  // one column forces recycling.
  Simulation sim;
  GpuSpec spec = GpuSpec::titan_x();
  spec.num_smms = 1;
  Device dev(sim, spec);
  Runtime rt(dev);
  rt.start();
  constexpr int kBlocks = 32;
  std::vector<long long> out(kBlocks, -1);
  bool done = false;
  sim.spawn(spawn_reduce_tasks(rt, out, 1, 64, kBlocks, done));
  sim.run_until(sim::seconds(2.0));
  ASSERT_TRUE(done);
  for (int b = 0; b < kBlocks; ++b) {
    const long long lo = static_cast<long long>(b) * 64;
    ASSERT_EQ(out[static_cast<std::size_t>(b)], (lo + lo + 63) * 64 / 2);
  }
  rt.shutdown();
}

TEST(PagodaRuntime, FullArenaTasksSerializePerMtb) {
  // Tasks requesting the whole 32KB arena cannot share an MTB; they must
  // still all complete, via deferred deallocation sweeps.
  Simulation sim;
  GpuSpec spec = GpuSpec::titan_x();
  spec.num_smms = 1;  // 2 MTBs
  Device dev(sim, spec);
  Runtime rt(dev);
  rt.start();
  constexpr int kTasks = 8;
  std::vector<long long> out(kTasks, -1);
  bool done = false;
  // 32KB request with 2 warps per block.
  struct Spawner {
    static sim::Process run(Runtime& rt, std::vector<long long>& out,
                            bool& done) {
      for (int t = 0; t < kTasks; ++t) {
        TaskParams p;
        p.fn = reduce_kernel;
        p.threads_per_block = 64;
        p.num_blocks = 1;
        p.needs_sync = true;
        p.shared_mem_bytes = 32 * 1024;
        p.set_args(ReduceArgs{out.data() + t});
        co_await rt.task_spawn(p);
      }
      co_await rt.wait_all();
      done = true;
    }
  };
  sim.spawn(Spawner::run(rt, out, done));
  sim.run_until(sim::seconds(2.0));
  ASSERT_TRUE(done);
  for (int t = 0; t < kTasks; ++t) {
    ASSERT_EQ(out[static_cast<std::size_t>(t)], 63 * 64 / 2);
  }
  rt.shutdown();
}

// --- API validation ------------------------------------------------------------

TEST(PagodaRuntime, ValidateRejectsBadParams) {
  const GpuSpec spec = GpuSpec::titan_x();
  TaskParams ok;
  ok.fn = tid_kernel;
  ok.threads_per_block = 128;
  Runtime::validate(ok, spec);  // no death

  TaskParams no_fn = ok;
  no_fn.fn = nullptr;
  EXPECT_DEATH(Runtime::validate(no_fn, spec), "null kernel");

  TaskParams big_tb = ok;
  big_tb.threads_per_block = 2048;
  EXPECT_DEATH(Runtime::validate(big_tb, spec), "threads per block");

  TaskParams big_shm = ok;
  big_shm.shared_mem_bytes = 64 * 1024;
  EXPECT_DEATH(Runtime::validate(big_shm, spec), "shared memory");

  TaskParams sync_1024 = ok;
  sync_1024.threads_per_block = 1024;  // 32 warps > 31 executor warps
  sync_1024.needs_sync = true;
  EXPECT_DEATH(Runtime::validate(sync_1024, spec), "synchronizing");
}

TEST(PagodaRuntime, CheckReflectsCpuViewLag) {
  // check() reads the CPU mirror: immediately after spawn it must report
  // not-done even if the GPU finishes, until a copy-back happens.
  Simulation sim;
  Device dev(sim, GpuSpec::titan_x());
  Runtime rt(dev);
  rt.start();
  std::vector<int> out(32, -1);
  struct Body {
    static sim::Process run(Runtime& rt, std::vector<int>& out, bool& done) {
      const TaskHandle h =
          co_await rt.task_spawn(make_tid_task(out.data(), 32, 32, 1));
      EXPECT_FALSE(rt.check(h));  // nothing copied back yet
      co_await rt.wait(h);
      EXPECT_TRUE(rt.check(h));
      done = true;
    }
  };
  bool done = false;
  sim.spawn(Body::run(rt, out, done));
  sim.run_until(sim::milliseconds(50));
  ASSERT_TRUE(done);
  rt.shutdown();
}

// --- handle identity: recycled entries and foreign runtimes -------------------

// Burns enough pipeline cycles that the task is still running while the host
// probes a stale handle.
KernelCoro slow_kernel(WarpCtx& ctx) {
  ctx.charge(2.0e5);
  co_return;
}

TEST(PagodaRuntime, WaitOnRecycledHandleReturnsImmediately) {
  // A handle whose TaskTable entry was reissued to a later task must report
  // done at once — never block on (or observe) the later task's completion.
  // Cluster-level retry loops re-wait old handles and depend on this.
  Simulation sim;
  GpuSpec spec = GpuSpec::titan_x();
  spec.num_smms = 1;  // 2 MTBs x 32 rows = 64 TaskTable entries
  Device dev(sim, spec);
  Runtime rt(dev);
  rt.start();
  std::vector<int> out(32, -1);
  struct Body {
    static sim::Process run(Runtime& rt, std::vector<int>& out, bool& done) {
      const TaskHandle h0 =
          co_await rt.task_spawn(make_tid_task(out.data(), 32, 32, 1));
      co_await rt.wait(h0);

      // Fill the whole table with slow tasks; the cursor wraps, so one of
      // them reuses h0's entry with a bumped generation.
      TaskParams slow;
      slow.fn = slow_kernel;
      slow.threads_per_block = 32;
      bool recycled = false;
      for (int t = 0; t < 64; ++t) {
        const TaskHandle h = co_await rt.task_spawn(slow);
        if (h.id == h0.id) {
          recycled = true;
          EXPECT_NE(h.generation, h0.generation);
        }
      }
      EXPECT_TRUE(recycled);

      // The recycled entry's new occupant is still running, so the entry's
      // ready field is non-free — yet the stale handle must read as done.
      EXPECT_LT(rt.master_kernel().tasks_completed(), 65);
      EXPECT_TRUE(rt.check(h0));
      const sim::Time before = rt.device().sim().now();
      co_await rt.wait(h0);
      const sim::Duration waited = rt.device().sim().now() - before;
      // One event_query poll, no wait_poll timeout round.
      EXPECT_LT(waited, sim::microseconds(20.0));
      EXPECT_LT(rt.master_kernel().tasks_completed(), 65);

      co_await rt.wait_all();
      done = true;
    }
  };
  bool done = false;
  sim.spawn(Body::run(rt, out, done));
  sim.run_until(sim::seconds(2.0));
  ASSERT_TRUE(done);
  EXPECT_EQ(rt.master_kernel().tasks_completed(), 65);
  rt.shutdown();
}

TEST(PagodaRuntimeDeathTest, ForeignHandleAborts) {
  // A TaskHandle routed to a Runtime that did not issue it (a cluster-level
  // routing bug) must abort loudly, not silently read another GPU's table.
  Simulation sim;
  Device dev_a(sim, GpuSpec::titan_x());
  Device dev_b(sim, GpuSpec::titan_x());
  Runtime rt_a(dev_a);
  Runtime rt_b(dev_b);
  rt_a.start();
  rt_b.start();
  std::vector<int> out(32, -1);
  TaskHandle h;
  struct Body {
    static sim::Process run(Runtime& rt, std::vector<int>& out,
                            TaskHandle& h) {
      h = co_await rt.task_spawn(make_tid_task(out.data(), 32, 32, 1));
      co_await rt.wait(h);
    }
  };
  sim.spawn(Body::run(rt_a, out, h));
  sim.run_until(sim::milliseconds(50));
  ASSERT_TRUE(h.valid());
  EXPECT_TRUE(rt_a.check(h));
  EXPECT_DEATH(rt_b.check(h), "did not issue");
  rt_a.shutdown();
  rt_b.shutdown();
}

// --- TaskTable unit behaviour ---------------------------------------------------

TEST(TaskTable, IdMappingRoundTrips) {
  TaskTable t(48, 32);
  EXPECT_EQ(t.size(), 1536);
  EXPECT_EQ(t.id_of(0, 0), kFirstTaskId);
  for (int c : {0, 7, 47}) {
    for (int r : {0, 5, 31}) {
      const TaskId id = t.id_of(c, r);
      EXPECT_GE(id, kFirstTaskId);
      EXPECT_EQ(t.column_of(id), c);
      EXPECT_EQ(t.row_of(id), r);
      EXPECT_EQ(&t.by_id(id), &t.at(c, r));
    }
  }
  EXPECT_FALSE(t.valid_id(0));
  EXPECT_FALSE(t.valid_id(1));
  EXPECT_TRUE(t.valid_id(kFirstTaskId));
  EXPECT_FALSE(t.valid_id(kFirstTaskId + t.size()));
}

TEST(TaskTable, ParamsBlobRoundTrips) {
  TaskParams p;
  struct Args {
    double a;
    int b;
  };
  p.set_args(Args{3.5, 42});
  EXPECT_EQ(p.args_size, static_cast<std::int32_t>(sizeof(Args)));
  Args back{};
  std::memcpy(&back, p.args.data(), sizeof(Args));
  EXPECT_EQ(back.a, 3.5);
  EXPECT_EQ(back.b, 42);
}

}  // namespace
}  // namespace pagoda::runtime
