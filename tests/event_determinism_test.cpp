// Determinism contract of the pooled event queue (see sim/event_queue.h).
//
// The queue pops in (time, schedule-sequence) order: events at the same
// timestamp fire in the order schedule() was called. Since the EventId now
// packs a pooled slot index and its reuse generation, the id is NOT ordered
// — these tests pin that slot reuse after cancel/fire can never change pop
// order, that the coroutine-resume fast path interleaves with callback
// events in call order, and (via a randomized soak against a reference
// model) that the property holds under arbitrary schedule/cancel mixes.
// golden_metrics_test.cpp extends the same guarantee end-to-end: full-run
// metrics JSON is pinned byte-for-byte to pre-refactor golden files.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "harness/calibration.h"
#include "harness/experiment.h"
#include "obs/collector.h"
#include "sim/process.h"
#include "sim/simulation.h"
#include "sim/sync.h"

namespace pagoda {
namespace {

TEST(EventDeterminism, SameTimestampPopsInScheduleOrder) {
  sim::Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 64; ++i) {
    sim.at(100, [&order, i] { order.push_back(i); });
  }
  sim.run();
  ASSERT_EQ(order.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

// Cancelling early events frees their pool slots; later same-timestamp
// events reuse those slots but must still fire in schedule order (the
// tie-break is the schedule sequence, not the slot index).
TEST(EventDeterminism, SlotReuseAfterCancelKeepsFifo) {
  sim::Simulation sim;
  std::vector<int> order;
  std::vector<sim::EventId> doomed;
  for (int i = 0; i < 16; ++i) {
    doomed.push_back(sim.at(50, [&order] { order.push_back(-1); }));
  }
  for (const sim::EventId id : doomed) EXPECT_TRUE(sim.cancel(id));
  // These reuse the 16 freed slots (in some pool order); their pop order
  // must still be schedule order.
  for (int i = 0; i < 32; ++i) {
    sim.at(50, [&order, i] { order.push_back(i); });
  }
  sim.run();
  ASSERT_EQ(order.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

// Slots recycled by *fired* events must not reorder later ties either: run
// several generations of same-timestamp batches through the queue.
TEST(EventDeterminism, SlotReuseAcrossGenerationsKeepsFifo) {
  sim::Simulation sim;
  std::vector<std::pair<int, int>> order;  // (generation, index)
  for (int gen = 0; gen < 8; ++gen) {
    for (int i = 0; i < 24; ++i) {
      sim.at(10 * (gen + 1), [&order, gen, i] { order.emplace_back(gen, i); });
    }
  }
  sim.run();
  ASSERT_EQ(order.size(), 8u * 24u);
  for (int gen = 0; gen < 8; ++gen) {
    for (int i = 0; i < 24; ++i) {
      EXPECT_EQ(order[static_cast<size_t>(gen * 24 + i)],
                std::make_pair(gen, i));
    }
  }
}

// The coroutine-resume fast path (schedule_resume) shares the same sequence
// counter as callback events: a process wake and a callback scheduled for
// the same instant fire in the order they were scheduled. The controller
// alternates trigger fires (resume events) with defers (callback events).
TEST(EventDeterminism, ResumeAndCallbackEventsInterleaveInScheduleOrder) {
  sim::Simulation sim;
  std::vector<int> order;
  std::vector<std::unique_ptr<sim::Trigger>> triggers;
  for (int i = 0; i < 10; ++i) {
    triggers.push_back(std::make_unique<sim::Trigger>(sim));
  }
  auto waiter = [](sim::Trigger& t, std::vector<int>& ord,
                   int tag) -> sim::Process {
    co_await t.wait();
    ord.push_back(tag);
  };
  for (int i = 0; i < 10; ++i) {
    sim.spawn(waiter(*triggers[i], order, 2 * i));
  }
  auto controller = [](sim::Simulation& s,
                       std::vector<std::unique_ptr<sim::Trigger>>& trig,
                       std::vector<int>& ord) -> sim::Process {
    co_await s.delay(100);
    for (int i = 0; i < 10; ++i) {
      trig[static_cast<size_t>(i)]->fire();  // resume event, tag 2i
      s.defer([&ord, i] { ord.push_back(2 * i + 1); });
    }
  };
  sim.spawn(controller(sim, triggers, order));
  sim.run();
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

// Randomized soak against a reference model: arbitrary mixes of schedule
// (with heavy timestamp collisions) and cancel must fire in exactly the
// (time, schedule-sequence) order of the surviving events.
TEST(EventDeterminism, RandomizedSoakMatchesReferenceModel) {
  for (std::uint64_t seed : {1ull, 7ull, 42ull, 1234567ull}) {
    sim::Simulation sim;
    SplitMix64 rng(seed);
    struct Ref {
      sim::Time at;
      int tag;
      sim::EventId id;
      bool cancelled = false;
    };
    std::vector<Ref> model;
    std::vector<int> fired;
    for (int i = 0; i < 2000; ++i) {
      if (!model.empty() && rng.next() % 4 == 0) {
        // Cancel a random not-yet-cancelled entry (may already have fired
        // by schedule order; cancel() then returns false — mirror that).
        Ref& r = model[rng.next() % model.size()];
        if (!r.cancelled) r.cancelled = sim.cancel(r.id);
      } else {
        // 16 distinct timestamps over 2000 events: long FIFO chains.
        const auto at = static_cast<sim::Time>(rng.next() % 16 + 1);
        const int tag = i;
        const sim::EventId id =
            sim.at(at, [&fired, tag] { fired.push_back(tag); });
        model.push_back(Ref{at, tag, id});
      }
    }
    sim.run();
    std::vector<int> want;
    std::stable_sort(model.begin(), model.end(),
                     [](const Ref& a, const Ref& b) { return a.at < b.at; });
    for (const Ref& r : model) {
      if (!r.cancelled) want.push_back(r.tag);
    }
    EXPECT_EQ(fired, want) << "seed " << seed;
  }
}

// End-to-end determinism: three back-to-back Pagoda MM runs in one process
// (so later runs inherit warmed event/frame pools) must produce
// byte-identical metrics JSON.
TEST(EventDeterminism, RepeatedRunsProduceIdenticalMetricsJson) {
  auto run_once = []() -> std::string {
    workloads::WorkloadConfig wcfg;
    wcfg.num_tasks = 256;
    wcfg.threads_per_task = 128;
    wcfg.seed = 0x9A60DAULL;
    obs::CollectorConfig ccfg;
    ccfg.sample_period = sim::microseconds(20.0);
    obs::Collector collector(ccfg);
    baselines::RunConfig rcfg = harness::paper_platform();
    rcfg.mode = gpu::ExecMode::Model;
    rcfg.collect_latencies = true;
    rcfg.collector = &collector;
    const harness::Measurement m =
        harness::run_experiment("MM", "Pagoda", wcfg, rcfg);
    std::ostringstream out;
    m.metrics.write_json(out);
    return out.str();
  };
  const std::string first = run_once();
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, run_once());
  EXPECT_EQ(first, run_once());
}

}  // namespace
}  // namespace pagoda
