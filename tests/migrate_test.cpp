// Migration-plane tests: checkpoint image round-trip / byte-stability /
// malformed-image rejection, autoscale + resize spec parsing, migrate-not-
// shed drains through the dispatcher (exactly-once ledger, migrate_xfer
// trace tiling), the host-side TaskTable revoke, the PR4 x PR7 seam (a wake
// arriving while a drain is still in progress cancels the drain instead of
// double-reinstating the node), and the autoscaler's trough/peak behavior
// composed with a DVFS governor.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/dispatcher.h"
#include "cluster/placement.h"
#include "cluster/traffic.h"
#include "engine/session.h"
#include "migrate/autoscaler.h"
#include "migrate/checkpoint.h"
#include "migrate/migrate.h"
#include "obs/trace_span.h"
#include "power/governor.h"
#include "power/power_spec.h"
#include "sim/process.h"

namespace pagoda::migrate {
namespace {

// --- checkpoint image --------------------------------------------------------

TaskCheckpoint sample_checkpoint() {
  TaskCheckpoint cp;
  cp.uid = 0xDEADBEEFCAFEBABEull;
  cp.arrival = 123456;
  cp.attempt = 2;
  cp.cls = sched::Class::kInteractive;
  cp.slo = 5000000;
  cp.cost = 42.5;
  cp.h2d_bytes = 4096;
  cp.d2h_bytes = 1024;
  cp.data_key = 77;
  cp.index = 913;
  cp.params.num_blocks = 3;
  cp.params.threads_per_block = 96;
  cp.params.shared_mem_bytes = 512;
  cp.params.needs_sync = true;
  cp.params.sched_class = 0;
  cp.params.deadline_us = 987654;
  struct Args {
    int a = 17;
    double b = 2.75;
  } args;
  cp.params.set_args(args);
  cp.point = SafePoint::kStaged;
  cp.source_node = 5;
  return cp;
}

TEST(Checkpoint, RoundTripPreservesEveryField) {
  const TaskCheckpoint cp = sample_checkpoint();
  const std::vector<std::byte> image = serialize(cp);
  TaskCheckpoint out;
  ASSERT_TRUE(deserialize(image, &out));
  EXPECT_EQ(out.uid, cp.uid);
  EXPECT_EQ(out.arrival, cp.arrival);
  EXPECT_EQ(out.attempt, cp.attempt);
  EXPECT_EQ(out.cls, cp.cls);
  EXPECT_EQ(out.slo, cp.slo);
  EXPECT_DOUBLE_EQ(out.cost, cp.cost);
  EXPECT_EQ(out.h2d_bytes, cp.h2d_bytes);
  EXPECT_EQ(out.d2h_bytes, cp.d2h_bytes);
  EXPECT_EQ(out.data_key, cp.data_key);
  EXPECT_EQ(out.index, cp.index);
  EXPECT_EQ(out.params.num_blocks, cp.params.num_blocks);
  EXPECT_EQ(out.params.threads_per_block, cp.params.threads_per_block);
  EXPECT_EQ(out.params.shared_mem_bytes, cp.params.shared_mem_bytes);
  EXPECT_EQ(out.params.needs_sync, cp.params.needs_sync);
  EXPECT_EQ(out.params.sched_class, cp.params.sched_class);
  EXPECT_EQ(out.params.deadline_us, cp.params.deadline_us);
  EXPECT_EQ(out.params.args_size, cp.params.args_size);
  EXPECT_EQ(std::memcmp(out.params.args.data(), cp.params.args.data(),
                        static_cast<std::size_t>(cp.params.args_size)),
            0);
  EXPECT_EQ(out.point, cp.point);
  EXPECT_EQ(out.source_node, cp.source_node);
  // The kernel ref never crosses the wire; the restoring side re-binds it.
  EXPECT_EQ(out.params.fn, nullptr);
}

TEST(Checkpoint, ByteStableAcrossReserialization) {
  const TaskCheckpoint cp = sample_checkpoint();
  const std::vector<std::byte> a = serialize(cp);
  const std::vector<std::byte> b = serialize(cp);
  EXPECT_EQ(a, b);
  EXPECT_EQ(image_digest(a), image_digest(b));

  // Round-tripping and re-serializing must also reproduce the bytes: the
  // image is a pure function of attempt state, not of which host wrote it.
  TaskCheckpoint out;
  ASSERT_TRUE(deserialize(a, &out));
  EXPECT_EQ(serialize(out), a);
}

TEST(Checkpoint, RejectsMalformedImages) {
  const std::vector<std::byte> good = serialize(sample_checkpoint());
  TaskCheckpoint out;

  // Empty and truncated buffers.
  EXPECT_FALSE(deserialize({}, &out));
  for (const std::size_t keep : {std::size_t{1}, std::size_t{4},
                                 good.size() / 2, good.size() - 1}) {
    EXPECT_FALSE(deserialize({good.data(), keep}, &out)) << keep;
  }
  // Trailing garbage.
  std::vector<std::byte> longer = good;
  longer.push_back(std::byte{0});
  EXPECT_FALSE(deserialize(longer, &out));
  // Any single flipped byte must fail the digest (or a range check).
  for (const std::size_t at : {std::size_t{0}, std::size_t{5},
                               good.size() / 2, good.size() - 1}) {
    std::vector<std::byte> bad = good;
    bad[at] ^= std::byte{0x40};
    EXPECT_FALSE(deserialize(bad, &out)) << at;
  }
  // `out` stays untouched through every rejection.
  TaskCheckpoint fresh;
  EXPECT_EQ(out.uid, fresh.uid);
  EXPECT_EQ(out.index, fresh.index);
}

TEST(Checkpoint, TransferBytesBySafePoint) {
  TaskCheckpoint cp = sample_checkpoint();
  cp.h2d_bytes = 4096;
  cp.point = SafePoint::kQueued;
  EXPECT_EQ(transfer_bytes(cp), 0);  // nothing ever reached the node
  cp.point = SafePoint::kStaged;
  const std::int64_t staged = transfer_bytes(cp);
  EXPECT_GE(staged, cp.h2d_bytes);  // the staged payload moves
  cp.point = SafePoint::kTableParked;
  EXPECT_GT(transfer_bytes(cp), staged);  // plus the revoked descriptor
}

// --- spec parsing ------------------------------------------------------------

TEST(AutoscaleSpec, ParsesValidForms) {
  std::string err;
  const auto util = parse_autoscale_spec("0.6", &err);
  ASSERT_TRUE(util.has_value()) << err;
  EXPECT_TRUE(util->enabled);
  EXPECT_DOUBLE_EQ(util->target_util, 0.6);
  EXPECT_LT(util->low_watermark, util->high_watermark);

  const auto full = parse_autoscale_spec("0.5:0.2:0.9:3", &err);
  ASSERT_TRUE(full.has_value()) << err;
  EXPECT_DOUBLE_EQ(full->low_watermark, 0.2);
  EXPECT_DOUBLE_EQ(full->high_watermark, 0.9);
  EXPECT_EQ(full->min_nodes, 3);
}

TEST(AutoscaleSpec, RejectsMalformedForms) {
  const char* bad[] = {"",     "x",         "0",       "1.5",
                       "0.6:", "0.6:0.9:0.3",  // low >= high
                       "0.6:0.3:0.9:0",        // min < 1
                       "0.6:0.3",              // two fields is neither form
                       "0.6:0.3:1.5"};         // high > 1
  for (const char* spec : bad) {
    std::string err;
    EXPECT_FALSE(parse_autoscale_spec(spec, &err).has_value()) << spec;
    EXPECT_FALSE(err.empty()) << spec;
  }
}

TEST(ResizeSpec, ParsesAndRejects) {
  std::string err;
  const auto plan = parse_resize_spec("1000:4,2500:16", &err);
  ASSERT_TRUE(plan.has_value()) << err;
  ASSERT_EQ(plan->size(), 2u);
  EXPECT_EQ((*plan)[0].at, sim::microseconds(1000.0));
  EXPECT_EQ((*plan)[0].target, 4);
  EXPECT_EQ((*plan)[1].target, 16);

  const char* bad[] = {"", "1000", "1000:", "1000:0", ":4", "x:4",
                       "2000:4,1000:8",  // not increasing
                       "1000:4,1000:8"};
  for (const char* spec : bad) {
    EXPECT_FALSE(parse_resize_spec(spec, &err).has_value()) << spec;
    EXPECT_FALSE(err.empty()) << spec;
  }
}

// --- cluster harness ---------------------------------------------------------

struct RunSpec {
  int gpus = 2;
  int requests = 256;
  std::uint64_t seed = 1;
  double rate_per_sec = 100.0e3;
  bool migrate = true;
  bool power = false;
  power::GovernorKind governor = power::GovernorKind::kStatic;
  AutoscaleConfig autoscale{};
  /// Nodes to drain_node() at the given instants (administrative drains).
  std::vector<std::pair<sim::Time, int>> drains;
  /// reinstate_node() instants (the wake-during-drain seam).
  std::vector<std::pair<sim::Time, int>> reinstates;
  bool trace = false;
};

struct RunOutput {
  cluster::Dispatcher::Stats stats;
  MigrationManager::Stats mig;
  Autoscaler::Stats scale;
  bool has_scale = false;
  std::vector<obs::RequestTracer::Record> records;
  bool done = false;
};

sim::Process feed(sim::Simulation& sim, cluster::Dispatcher& disp,
                  const RunSpec& rs) {
  cluster::ArrivalConfig acfg;
  acfg.kind = cluster::ArrivalKind::Poisson;
  acfg.rate_per_sec = rs.rate_per_sec;
  cluster::ArrivalSequence seq(acfg, rs.seed);
  // Heavy enough that spawned entries outnumber free scheduler warps: the
  // table holds released-but-unclaimed entries (revocable) and the slot
  // queue holds parked waiters (the kQueued safe point) when a drain hits.
  cluster::RequestProfile profile;
  profile.threads_per_task = 256;
  profile.compute_cycles = 120000.0;
  profile.stall_cycles = 240000.0;
  for (int i = 0; i < rs.requests; ++i) {
    const sim::Duration gap = seq.next_gap();
    if (gap > 0) co_await sim.delay(gap);
    disp.offer(cluster::synth_request(profile, rs.seed, i));
  }
  disp.close();
}

sim::Process admin(sim::Simulation& sim, cluster::Dispatcher& disp,
                   const RunSpec& rs) {
  sim::Time at = 0;
  for (const auto& [when, node] : rs.drains) {
    if (when > at) co_await sim.delay(when - at);
    at = when;
    disp.drain_node(node);
  }
  for (const auto& [when, node] : rs.reinstates) {
    if (when > at) co_await sim.delay(when - at);
    at = when;
    disp.reinstate_node(node);
  }
}

sim::Process settle(cluster::Dispatcher& disp, RunOutput& out) {
  co_await disp.drain();
  out.done = true;
}

RunOutput run_cluster(const RunSpec& rs) {
  engine::SessionConfig scfg;
  scfg.device = false;
  engine::Session session(scfg);
  sim::Simulation& sim = session.sim();

  cluster::NodeConfig nc;
  nc.pagoda.rows_per_column = 4;
  std::vector<cluster::NodeConfig> nodes(static_cast<std::size_t>(rs.gpus),
                                         nc);
  cluster::Cluster fleet(sim, nodes);
  cluster::DispatcherConfig dc;
  dc.migration.enabled = rs.migrate;
  if (rs.power) {
    dc.power.spec = power::PowerSpec::default_spec();
    dc.power.governor = rs.governor;
  }
  dc.autoscale = rs.autoscale;
  cluster::Dispatcher disp(fleet, cluster::make_policy("least-outstanding"),
                           dc);
  obs::RequestTracer tracer;
  if (rs.trace) disp.set_tracer(&tracer);
  fleet.start();

  RunOutput out;
  sim.spawn(feed(sim, disp, rs));
  if (!rs.drains.empty() || !rs.reinstates.empty()) {
    sim.spawn(admin(sim, disp, rs));
  }
  sim.spawn(settle(disp, out));
  sim.run_until(sim::seconds(60.0));

  out.stats = disp.stats();
  if (disp.migration() != nullptr) out.mig = disp.migration()->stats();
  if (disp.autoscaler() != nullptr) {
    out.scale = disp.autoscaler()->stats();
    out.has_scale = true;
  }
  out.records = tracer.records();
  fleet.shutdown();
  return out;
}

/// Every admitted request resolved exactly once, nothing was lost.
void expect_lossless(const RunOutput& out) {
  EXPECT_TRUE(out.done);
  EXPECT_EQ(out.stats.shed, 0);
  EXPECT_EQ(out.stats.dropped, 0);
  EXPECT_EQ(out.stats.completed, out.stats.admitted);
  EXPECT_EQ(out.stats.slot_releases, out.stats.completed + out.stats.shed);
}

// --- migrate-not-shed drains -------------------------------------------------

TEST(DrainMigration, DrainMovesWorkInsteadOfSheddingIt) {
  RunSpec rs;
  rs.gpus = 3;
  rs.requests = 768;
  rs.rate_per_sec = 2.0e6;  // oversubscribed: slot queues hold waiters
  rs.drains = {{sim::microseconds(300.0), 0}};
  const RunOutput out = run_cluster(rs);
  expect_lossless(out);
  // The drain caught in-flight work and every checkpoint was restored.
  EXPECT_GT(out.stats.migrated, 0);
  // Oversubscription puts waiters on the slot queue (kQueued) and leaves
  // unclaimed TaskTable entries for the revoke path (kTableParked).
  EXPECT_GT(out.mig.queued, 0u);
  EXPECT_GT(out.mig.table_parked, 0u);
  EXPECT_EQ(out.mig.restores, out.mig.checkpoints);
  EXPECT_EQ(static_cast<std::int64_t>(out.mig.restores), out.stats.migrated);
  EXPECT_EQ(out.mig.checkpoints,
            out.mig.queued + out.mig.staged + out.mig.table_parked);
  EXPECT_GT(out.mig.image_bytes, 0u);
}

TEST(DrainMigration, RevokeLosersRunInPlace) {
  // Drain all but one node repeatedly: some TaskTable revokes will race a
  // scheduler-warp claim and lose; those attempts must finish on the
  // draining node (declined counted, nothing shed, ledger intact).
  RunSpec rs;
  rs.gpus = 2;
  rs.requests = 512;
  rs.rate_per_sec = 200.0e3;
  rs.drains = {{sim::microseconds(200.0), 0},
               {sim::microseconds(900.0), 1}};
  rs.reinstates = {{sim::microseconds(700.0), 0}};
  const RunOutput out = run_cluster(rs);
  expect_lossless(out);
  EXPECT_GT(out.stats.migrated, 0);
  EXPECT_EQ(static_cast<std::int64_t>(out.mig.declined),
            out.stats.migrate_declined);
}

TEST(DrainMigration, MigrateXferPhaseTilesTheSpan) {
  RunSpec rs;
  rs.gpus = 3;
  rs.requests = 512;
  rs.rate_per_sec = 1.0e6;
  rs.trace = true;
  rs.drains = {{sim::microseconds(300.0), 0}};
  const RunOutput out = run_cluster(rs);
  expect_lossless(out);
  ASSERT_GT(out.stats.migrated, 0);
  // Migrated requests resolve with >= 2 attempts, a migrate_xfer bucket and
  // an intact tiling: the buckets sum to the request's wall time.
  int with_xfer = 0;
  for (const obs::RequestTracer::Record& r : out.records) {
    sim::Duration total = 0;
    for (const sim::Duration d : r.buckets) total += d;
    EXPECT_EQ(total, r.done - r.arrival) << r.uid;
    const sim::Duration xfer =
        r.buckets[static_cast<std::size_t>(obs::Phase::kMigrateXfer)];
    if (xfer > 0) {
      with_xfer += 1;
      EXPECT_GE(r.attempts, 2) << r.uid;
    }
  }
  EXPECT_GT(with_xfer, 0);
}

TEST(DrainMigration, DisarmedDrainKeepsLegacyFinishInPlace) {
  RunSpec rs;
  rs.gpus = 3;
  rs.requests = 256;
  rs.migrate = false;
  rs.drains = {{sim::microseconds(300.0), 0}};
  const RunOutput out = run_cluster(rs);
  expect_lossless(out);
  EXPECT_EQ(out.stats.migrated, 0);
  EXPECT_EQ(out.mig.checkpoints, 0u);
}

// --- the PR4 x PR7 seam: wake arriving mid-drain -----------------------------

TEST(WakeDuringDrain, CancelsThePendingDrainWithoutDoubleReinstate) {
  // A resize plan that shrinks and then grows again almost immediately: the
  // grow lands while the shrink's drain is still waiting for in-flight work,
  // so the autoscaler must cancel the pending drain (restore_node once)
  // rather than sleep + wake the node or reinstate it twice.
  RunSpec rs;
  rs.gpus = 2;
  rs.requests = 384;
  rs.rate_per_sec = 150.0e3;
  rs.power = true;
  rs.autoscale.plan = {{sim::microseconds(200.0), 1},
                       {sim::microseconds(260.0), 2}};
  const RunOutput out = run_cluster(rs);
  expect_lossless(out);
  ASSERT_TRUE(out.has_scale);
  EXPECT_EQ(out.scale.resize_events, 2u);
  EXPECT_EQ(out.scale.drains_started, 1u);
  EXPECT_EQ(out.scale.drains_cancelled, 1u);
  // The node never finished quiescing, so it never slept and never needed
  // an S-state wake; the cancel path alone returned it to placement.
  EXPECT_EQ(out.scale.nodes_slept, 0u);
  EXPECT_EQ(out.scale.nodes_woken, 0u);
}

TEST(WakeDuringDrain, CompletedDrainWakesFromSleepInstead) {
  // Same plan with a long gap: the drain finishes, the node S-sleeps, and
  // the grow step must wake it (not cancel anything).
  RunSpec rs;
  rs.gpus = 2;
  rs.requests = 384;
  rs.rate_per_sec = 150.0e3;
  rs.power = true;
  rs.autoscale.plan = {{sim::microseconds(200.0), 1},
                       {sim::microseconds(2600.0), 2}};
  const RunOutput out = run_cluster(rs);
  expect_lossless(out);
  ASSERT_TRUE(out.has_scale);
  EXPECT_EQ(out.scale.drains_started, 1u);
  EXPECT_EQ(out.scale.drains_cancelled, 0u);
  EXPECT_EQ(out.scale.nodes_slept, 1u);
  EXPECT_EQ(out.scale.nodes_woken, 1u);
}

// --- autoscaler policy -------------------------------------------------------

TEST(Autoscaler, SleepsTheTroughAndStaysLossless) {
  RunSpec rs;
  rs.gpus = 4;
  rs.requests = 512;
  rs.rate_per_sec = 40.0e3;  // light load: most of the fleet is surplus
  rs.power = true;
  rs.autoscale.enabled = true;
  rs.autoscale.target_util = 0.6;
  rs.autoscale.low_watermark = 0.3;
  rs.autoscale.high_watermark = 0.85;
  rs.autoscale.min_nodes = 1;
  const RunOutput out = run_cluster(rs);
  expect_lossless(out);
  ASSERT_TRUE(out.has_scale);
  EXPECT_GT(out.scale.checks, 0u);
  EXPECT_GT(out.scale.nodes_slept, 0u);
}

TEST(Autoscaler, ComposesWithDvfsGovernor) {
  RunSpec rs;
  rs.gpus = 4;
  rs.requests = 512;
  rs.power = true;
  rs.governor = power::GovernorKind::kDvfs;
  rs.autoscale.enabled = true;
  rs.autoscale.target_util = 0.6;
  rs.autoscale.low_watermark = 0.3;
  rs.autoscale.high_watermark = 0.85;
  rs.autoscale.min_nodes = 1;
  const RunOutput out = run_cluster(rs);
  expect_lossless(out);
  ASSERT_TRUE(out.has_scale);
  EXPECT_GT(out.scale.checks, 0u);
}

TEST(Autoscaler, DeterministicAcrossReruns) {
  RunSpec rs;
  rs.gpus = 4;
  rs.requests = 384;
  rs.power = true;
  rs.autoscale.enabled = true;
  rs.autoscale.target_util = 0.6;
  rs.autoscale.low_watermark = 0.3;
  rs.autoscale.high_watermark = 0.85;
  rs.autoscale.min_nodes = 1;
  rs.autoscale.plan = {{sim::microseconds(300.0), 2},
                       {sim::microseconds(1500.0), 4}};
  const RunOutput a = run_cluster(rs);
  const RunOutput b = run_cluster(rs);
  expect_lossless(a);
  EXPECT_EQ(a.stats.migrated, b.stats.migrated);
  EXPECT_EQ(a.mig.checkpoints, b.mig.checkpoints);
  EXPECT_EQ(a.mig.image_digest, b.mig.image_digest);
  EXPECT_EQ(a.mig.xfer_bytes, b.mig.xfer_bytes);
  EXPECT_EQ(a.scale.nodes_slept, b.scale.nodes_slept);
  EXPECT_EQ(a.scale.checks, b.scale.checks);
}

}  // namespace
}  // namespace pagoda::migrate
