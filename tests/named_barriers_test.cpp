// Unit tests for the named-barrier pool (paper §5.2): 16 PTX bar.sync ids
// per MTB, leased per synchronizing threadblock and recycled.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "pagoda/named_barriers.h"
#include "sim/process.h"

namespace pagoda::runtime {
namespace {

TEST(NamedBarrierPool, SixteenIdsLeasedUniquely) {
  sim::Simulation sim;
  NamedBarrierPool pool(sim);
  EXPECT_EQ(pool.free_count(), NamedBarrierPool::kNumBarriers);
  std::set<int> ids;
  for (int i = 0; i < NamedBarrierPool::kNumBarriers; ++i) {
    const int id = pool.acquire(/*participants=*/4);
    EXPECT_GE(id, 0);
    EXPECT_LT(id, NamedBarrierPool::kNumBarriers);
    EXPECT_TRUE(ids.insert(id).second) << "duplicate lease of id " << id;
  }
  EXPECT_FALSE(pool.has_free());
  EXPECT_EQ(pool.free_count(), 0);
}

TEST(NamedBarrierPool, ReleaseRecyclesIds) {
  sim::Simulation sim;
  NamedBarrierPool pool(sim);
  std::vector<int> first;
  for (int i = 0; i < NamedBarrierPool::kNumBarriers; ++i) {
    first.push_back(pool.acquire(2));
  }
  pool.release(first[5]);
  pool.release(first[11]);
  EXPECT_EQ(pool.free_count(), 2);
  // Recycled ids come back (in some order) without exhausting the pool.
  const int a = pool.acquire(2);
  const int b = pool.acquire(2);
  const std::set<int> got{a, b};
  EXPECT_TRUE(got.count(first[5]) == 1 || got.count(first[11]) == 1);
  EXPECT_FALSE(pool.has_free());
}

TEST(NamedBarrierPool, ExhaustedPoolAborts) {
  sim::Simulation sim;
  NamedBarrierPool pool(sim);
  for (int i = 0; i < NamedBarrierPool::kNumBarriers; ++i) pool.acquire(1);
  EXPECT_DEATH(pool.acquire(1), "exhausted");
}

sim::Process barrier_user(NamedBarrierPool& pool, int id, int& met,
                          sim::Simulation& sim, sim::Duration delay) {
  co_await sim.delay(delay);
  co_await pool.barrier(id).arrive_and_wait();
  ++met;
}

TEST(NamedBarrierPool, LeasedBarrierSynchronizesItsParticipants) {
  sim::Simulation sim;
  NamedBarrierPool pool(sim);
  const int id = pool.acquire(/*participants=*/3);
  int met = 0;
  sim.spawn(barrier_user(pool, id, met, sim, 10));
  sim.spawn(barrier_user(pool, id, met, sim, 200));
  sim.run_until(100);
  EXPECT_EQ(met, 0);  // two of three arrived: nobody released
  sim.spawn(barrier_user(pool, id, met, sim, 50));
  sim.run();
  EXPECT_EQ(met, 3);
  pool.release(id);
  EXPECT_EQ(pool.free_count(), NamedBarrierPool::kNumBarriers);
}

TEST(NamedBarrierPool, ResetReconfiguresParticipants) {
  sim::Simulation sim;
  NamedBarrierPool pool(sim);
  const int id = pool.acquire(2);
  int met = 0;
  sim.spawn(barrier_user(pool, id, met, sim, 1));
  sim.spawn(barrier_user(pool, id, met, sim, 2));
  sim.run();
  EXPECT_EQ(met, 2);
  pool.release(id);
  // Re-acquire with a different width: the barrier re-arms cleanly.
  const int id2 = pool.acquire(1);
  sim.spawn(barrier_user(pool, id2, met, sim, 1));
  sim.run();
  EXPECT_EQ(met, 3);
}

}  // namespace
}  // namespace pagoda::runtime
