// The virtual resource plane (DESIGN.md §16): ResourceLedger invariants,
// VirtualShmem passthrough byte-identity and deterministic spill/reclaim,
// virtual occupancy arithmetic, and an end-to-end oversubscribed run in
// compute mode (run_experiment aborts unless the CPU reference matches).
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <vector>

#include "common/rng.h"
#include "gpu/occupancy.h"
#include "harness/calibration.h"
#include "harness/experiment.h"
#include "obs/collector.h"
#include "pagoda/shmem_allocator.h"
#include "vres/resource_ledger.h"
#include "vres/virtual_shmem.h"

namespace pagoda {
namespace {

// ---------------------------------------------------------------------------
// ResourceLedger: the 50-seed soak. Random transition sequences against a
// shadow model; after EVERY transition the load-bearing invariant
//     virtual_allocated == physical_allocated + spilled
// must hold (plus non-negativity and capacity bounds).
// ---------------------------------------------------------------------------

TEST(ResourceLedgerSoak, FiftySeedsInvariantAtEveryTransition) {
  constexpr int kSeeds = 50;
  constexpr int kSteps = 400;
  constexpr std::int64_t kVirtualCap = 1 << 14;
  constexpr std::int64_t kPhysicalCap = 1 << 13;
  for (int s = 0; s < kSeeds; ++s) {
    SplitMix64 rng(0xA110CULL + static_cast<std::uint64_t>(s));
    vres::ResourceLedger ledger(kVirtualCap, kPhysicalCap);
    std::vector<std::int64_t> resident;
    std::vector<std::int64_t> spilled;
    const auto check = [&](const char* op) {
      ASSERT_TRUE(ledger.check_invariant()) << "seed " << s << " op " << op;
      ASSERT_EQ(ledger.virtual_allocated(),
                ledger.physical_allocated() + ledger.spilled())
          << "seed " << s << " op " << op;
    };
    for (int i = 0; i < kSteps; ++i) {
      const std::int64_t amount =
          512 * (1 + static_cast<std::int64_t>(rng.next_double() * 4.0));
      switch (static_cast<int>(rng.next_double() * 6.0)) {
        case 0:
          if (ledger.fits_virtual(amount) && ledger.fits_physical(amount)) {
            ledger.allocate_resident(amount);
            resident.push_back(amount);
            check("allocate_resident");
          }
          break;
        case 1:
          if (ledger.fits_virtual(amount)) {
            ledger.allocate_spilled(amount);
            spilled.push_back(amount);
            check("allocate_spilled");
          }
          break;
        case 2:
          if (!resident.empty()) {
            ledger.spill(resident.back());
            spilled.push_back(resident.back());
            resident.pop_back();
            check("spill");
          }
          break;
        case 3:
          if (!spilled.empty() && ledger.fits_physical(spilled.back())) {
            ledger.reclaim(spilled.back());
            resident.push_back(spilled.back());
            spilled.pop_back();
            check("reclaim");
          }
          break;
        case 4:
          if (!resident.empty()) {
            ledger.free_resident(resident.back());
            resident.pop_back();
            check("free_resident");
          }
          break;
        default:
          if (!spilled.empty()) {
            ledger.free_spilled(spilled.back());
            spilled.pop_back();
            check("free_spilled");
          }
          break;
      }
    }
    // Drain: freeing every live allocation must land the ledger on zero.
    for (const std::int64_t a : resident) ledger.free_resident(a);
    for (const std::int64_t a : spilled) ledger.free_spilled(a);
    EXPECT_EQ(ledger.virtual_allocated(), 0) << "seed " << s;
    EXPECT_EQ(ledger.physical_allocated(), 0) << "seed " << s;
    EXPECT_EQ(ledger.spilled(), 0) << "seed " << s;
    EXPECT_TRUE(ledger.check_invariant()) << "seed " << s;
  }
}

TEST(ResourceLedger, CountersTrackTransitions) {
  vres::ResourceLedger ledger;
  ledger.allocate_resident(1024);
  ledger.spill(1024);
  ledger.reclaim(1024);
  ledger.spill(512);
  ledger.free_resident(512);
  ledger.free_spilled(512);
  EXPECT_EQ(ledger.spills(), 2);
  EXPECT_EQ(ledger.reclaims(), 1);
  EXPECT_EQ(ledger.spill_amount_total(), 1536);
  EXPECT_EQ(ledger.reclaim_amount_total(), 1024);
  EXPECT_EQ(ledger.peak_virtual(), 1024);
  EXPECT_EQ(ledger.peak_spilled(), 1024);
  EXPECT_EQ(ledger.virtual_allocated(), 0);
}

// ---------------------------------------------------------------------------
// VirtualShmem at oversub == 1.0 is a pure passthrough: identical offsets,
// identical failures, identical sweep behavior as the raw buddy allocator.
// ---------------------------------------------------------------------------

TEST(VirtualShmem, PassthroughMatchesRawBuddy) {
  constexpr std::int32_t kArena = 32 * 1024;
  std::vector<std::byte> arena(kArena);
  vres::VirtualShmem virt(arena, /*oversub=*/1.0);
  runtime::ShmemAllocator raw(kArena);
  ASSERT_FALSE(virt.virtualized());

  SplitMix64 rng(0xBEEFULL);
  std::vector<std::int32_t> live;
  for (int i = 0; i < 500; ++i) {
    const double roll = rng.next_double();
    if (roll < 0.6) {
      const auto bytes =
          static_cast<std::int32_t>(256 + rng.next_double() * 8192.0);
      // The passthrough must ignore the used hint entirely.
      const auto got = virt.allocate(bytes, bytes / 2);
      const auto want = raw.allocate(bytes);
      ASSERT_EQ(got.has_value(), want.has_value()) << "step " << i;
      if (got.has_value()) {
        ASSERT_EQ(got->offset, *want) << "step " << i;
        ASSERT_EQ(got->vid, -1) << "step " << i;
        ASSERT_EQ(got->spills, 0) << "step " << i;
        live.push_back(got->offset);
      }
    } else if (roll < 0.9 && !live.empty()) {
      const auto idx = static_cast<std::size_t>(rng.next_double() *
                                                static_cast<double>(live.size()));
      virt.mark_for_deallocation(live[idx]);
      raw.mark_for_deallocation(live[idx]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    } else {
      ASSERT_EQ(virt.sweep_deferred(), raw.sweep_deferred()) << "step " << i;
    }
    ASSERT_EQ(virt.allocated_bytes(), raw.allocated_bytes()) << "step " << i;
    ASSERT_EQ(virt.has_deferred(), raw.has_deferred()) << "step " << i;
  }
}

// ---------------------------------------------------------------------------
// Virtualized mode: deterministic coldest-first spill, content-preserving
// reclaim, and the ledger invariant across the whole episode.
// ---------------------------------------------------------------------------

TEST(VirtualShmem, SpillsColdestAndReclaimPreservesBytes) {
  constexpr std::int32_t kArena = 4 * 1024;
  constexpr std::int32_t kBlock = 2 * 1024;
  std::vector<std::byte> arena(kArena);
  vres::VirtualShmem virt(arena, /*oversub=*/2.0);
  ASSERT_TRUE(virt.virtualized());
  ASSERT_EQ(virt.virtual_arena_bytes(), 2 * kArena);

  const auto a = virt.allocate(kBlock, kBlock);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->spills, 0);
  // Scribble a recognizable pattern into A's physical window.
  for (std::int32_t i = 0; i < kBlock; ++i) {
    arena[static_cast<std::size_t>(a->offset + i)] =
        static_cast<std::byte>(i * 7 + 3);
  }
  const auto b = virt.allocate(kBlock, kBlock);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->spills, 0);

  // The arena is physically full but virtually half-used: the third block
  // must evict the coldest unpinned resident — A (lowest vid, never touched).
  const auto c = virt.allocate(kBlock, kBlock);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->spills, 1);
  EXPECT_EQ(c->spilled_bytes, kBlock);
  EXPECT_EQ(virt.spilled_bytes_in_use(), kBlock);
  EXPECT_TRUE(virt.ledger().check_invariant());

  // Simulate C's threadblock clobbering the bytes A used to own.
  for (auto& byte : arena) byte = std::byte{0xEE};

  // Touching A reclaims it (spilling the next-coldest victim, B) and must
  // restore A's bytes exactly at its new physical offset.
  const auto back = virt.touch(a->vid);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->reclaimed);
  EXPECT_EQ(back->reclaimed_bytes, kBlock);
  EXPECT_EQ(back->spills, 1);
  for (std::int32_t i = 0; i < kBlock; ++i) {
    ASSERT_EQ(arena[static_cast<std::size_t>(back->offset + i)],
              static_cast<std::byte>(i * 7 + 3))
        << "byte " << i;
  }
  EXPECT_TRUE(virt.ledger().check_invariant());
  EXPECT_EQ(virt.spills(), 2);
  EXPECT_EQ(virt.reclaims(), 1);

  // A is pinned by its touch, so reclaiming B can only evict C — the one
  // remaining unpinned resident.
  const auto b2 = virt.touch(b->vid);
  ASSERT_TRUE(b2.has_value());
  EXPECT_TRUE(b2->reclaimed);
  EXPECT_EQ(b2->spills, 1);
  virt.mark_for_deallocation(-1, a->vid);
  virt.mark_for_deallocation(-1, b->vid);
  virt.sweep_deferred();
  const auto c2 = virt.touch(c->vid);
  ASSERT_TRUE(c2.has_value());
  EXPECT_TRUE(c2->reclaimed);
  virt.mark_for_deallocation(-1, c->vid);
  virt.sweep_deferred();
  EXPECT_EQ(virt.live_allocations(), 0);
  EXPECT_EQ(virt.ledger().virtual_allocated(), 0);
}

// Declared > used: the virtual charge is pow2(declared), the physical
// backing pow2(used) — more blocks co-reside than the declared footprints
// could ever pack physically.
TEST(VirtualShmem, UsedFootprintPacksDenserThanDeclared) {
  constexpr std::int32_t kArena = 8 * 1024;
  std::vector<std::byte> arena(kArena);
  vres::VirtualShmem virt(arena, /*oversub=*/2.0);
  // Four blocks declaring 4 KB each (16 KB total — only the virtual arena
  // holds them) while using 2 KB each (8 KB — exactly the physical arena).
  for (int i = 0; i < 4; ++i) {
    const auto r = virt.allocate(4 * 1024, 2 * 1024);
    ASSERT_TRUE(r.has_value()) << "block " << i;
    EXPECT_EQ(r->spills, 0) << "block " << i;
  }
  EXPECT_EQ(virt.virtual_bytes_in_use(), 16 * 1024);
  EXPECT_EQ(virt.allocated_bytes(), 8 * 1024);
  EXPECT_EQ(virt.spilled_bytes_in_use(), 0);
  // A fifth 4 KB declaration no longer fits virtually (20 KB > 16 KB).
  EXPECT_FALSE(virt.allocate(4 * 1024, 2 * 1024).has_value());
}

// ---------------------------------------------------------------------------
// Virtual occupancy arithmetic (gpu/occupancy.h).
// ---------------------------------------------------------------------------

TEST(OccupancyVirtual, ReducesToPhysicalAtOversubOne) {
  const gpu::GpuSpec spec = gpu::GpuSpec::titan_x();
  const gpu::BlockFootprint f = gpu::BlockFootprint::of(128, 33, 8 * 1024);
  const gpu::OccupancyResult plain = gpu::max_residency(spec, f);
  const gpu::OccupancyResult virt =
      gpu::max_residency_virtual(spec, f, f, 1.0);
  EXPECT_EQ(virt.blocks_per_smm, plain.blocks_per_smm);
  EXPECT_EQ(virt.warps_per_smm, plain.warps_per_smm);
  EXPECT_DOUBLE_EQ(virt.occupancy, plain.occupancy);
}

TEST(OccupancyVirtual, OversubLiftsShmemBoundResidency) {
  gpu::GpuSpec spec;
  spec.shared_mem_per_smm = 32 * 1024;
  gpu::BlockFootprint declared = gpu::BlockFootprint::of(32, 0, 8 * 1024);
  gpu::BlockFootprint used = declared;
  used.shared_mem_bytes = 4 * 1024;
  // Physically shmem-bound at 4 blocks; 1.5x oversubscription admits 6
  // declared footprints and the used footprints still fit (32K/4K = 8).
  EXPECT_EQ(gpu::max_residency(spec, declared).blocks_per_smm, 4);
  const gpu::OccupancyResult virt =
      gpu::max_residency_virtual(spec, declared, used, 1.5);
  EXPECT_EQ(virt.blocks_per_smm, 6);
  // The physical used-footprint limit still binds: an oversub big enough to
  // admit 16 declared blocks is capped by 32K/4K = 8 physical backings.
  const gpu::OccupancyResult capped =
      gpu::max_residency_virtual(spec, declared, used, 4.0);
  EXPECT_EQ(capped.blocks_per_smm, 8);
}

// ---------------------------------------------------------------------------
// End to end: irregular DCT under --oversub=1.5 in Compute mode.
// run_experiment() aborts unless every task's output matches the CPU
// reference, so passing this test IS the correctness gate for oversubscribed
// execution. The vres metric keys must appear iff oversub > 1.
// ---------------------------------------------------------------------------

std::string run_dct(double oversub) {
  workloads::WorkloadConfig wcfg;
  wcfg.num_tasks = 48;
  wcfg.threads_per_task = 64;
  wcfg.irregular_sizes = true;
  wcfg.seed = 0x5EED5ULL;

  baselines::RunConfig rcfg = harness::paper_platform();
  rcfg.mode = gpu::ExecMode::Compute;
  rcfg.pagoda.oversub = oversub;

  obs::CollectorConfig ccfg;
  ccfg.sample_period = sim::microseconds(50.0);
  obs::Collector collector(ccfg);
  rcfg.collector = &collector;

  const harness::Measurement m =
      harness::run_experiment("DCT", "Pagoda", wcfg, rcfg);
  std::ostringstream os;
  m.metrics.write_json(os);
  return os.str();
}

TEST(VresEndToEnd, OversubComputeVerifiesAndExportsMetrics) {
  const std::string metrics = run_dct(1.5);
  EXPECT_NE(metrics.find("pagoda.vres.spills"), std::string::npos);
  EXPECT_NE(metrics.find("pagoda.shmem.external_frag"), std::string::npos);
}

TEST(VresEndToEnd, OversubOneEmitsNoVresKeys) {
  const std::string metrics = run_dct(1.0);
  EXPECT_EQ(metrics.find("pagoda.vres."), std::string::npos);
  EXPECT_EQ(metrics.find("pagoda.shmem.external_frag"), std::string::npos);
}

}  // namespace
}  // namespace pagoda
