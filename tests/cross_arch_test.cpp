// Cross-architecture checks: the paper validated TaskTable behaviour on two
// GPUs (Maxwell Titan X and Kepler Tesla K40, §4.2.2). The runtime must be
// parameterized purely by GpuSpec — nothing may hard-code the Titan X.
#include <gtest/gtest.h>

#include <vector>

#include "gpu/device.h"
#include "gpu/occupancy.h"
#include "pagoda/runtime.h"
#include "sim/process.h"

namespace pagoda::runtime {
namespace {

gpu::KernelCoro mark_kernel(gpu::WarpCtx& ctx) {
  if (ctx.warp_in_task == 0 && ctx.compute()) {
    *static_cast<int* const&>(ctx.args_as<int*>()) += 1;
  }
  ctx.charge(30.0);
  ctx.charge_stall(60.0);
  co_return;
}

sim::Process spawn_all(Runtime& rt, std::vector<int>& counts, bool& done) {
  for (auto& c : counts) {
    TaskParams p;
    p.fn = mark_kernel;
    p.threads_per_block = 64;
    int* ptr = &c;
    p.set_args(ptr);
    co_await rt.task_spawn(p);
  }
  co_await rt.wait_all();
  done = true;
}

class CrossArch : public ::testing::TestWithParam<const char*> {};

TEST_P(CrossArch, PagodaRunsToCompletion) {
  const bool k40 = std::string_view(GetParam()) == "k40";
  sim::Simulation sim;
  const gpu::GpuSpec spec =
      k40 ? gpu::GpuSpec::tesla_k40() : gpu::GpuSpec::titan_x();
  gpu::Device dev(sim, spec);
  Runtime rt(dev);
  rt.start();
  EXPECT_EQ(rt.master_kernel().num_mtbs(), spec.num_smms * 2);
  std::vector<int> counts(300, 0);
  bool done = false;
  sim.spawn(spawn_all(rt, counts, done));
  sim.run_until(sim::seconds(5.0));
  ASSERT_TRUE(done);
  for (const int c : counts) EXPECT_EQ(c, 1);
  rt.shutdown();
}

INSTANTIATE_TEST_SUITE_P(Gpus, CrossArch,
                         ::testing::Values("titan_x", "k40"),
                         [](const auto& info) { return std::string(info.param); });

TEST(CrossArch, K40SpecMatchesKepler) {
  const gpu::GpuSpec k40 = gpu::GpuSpec::tesla_k40();
  EXPECT_EQ(k40.num_smms, 15);
  EXPECT_EQ(k40.shared_mem_per_smm, 48 * 1024);
  EXPECT_EQ(k40.max_blocks_per_smm, 16);
  // The MasterKernel still fits: 2 MTBs of 32KB shmem need 64KB... which
  // exceeds the K40's 48KB! On Kepler Pagoda must shrink the per-MTB arena
  // or run one MTB per SMX; the spec captures the constraint the port hits.
  const auto mtb = gpu::BlockFootprint::of(1024, 32, 32 * 1024);
  EXPECT_LT(gpu::max_residency(k40, mtb).blocks_per_smm, 2);
}

}  // namespace
}  // namespace pagoda::runtime
