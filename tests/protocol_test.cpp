// TaskTable protocol tests (paper §4.2, Fig 2): the pipelined release
// discipline, the flush path, lazy aggregate updates, and a randomized
// protocol fuzz asserting every task executes exactly once under arbitrary
// mixes of task shapes.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.h"
#include "gpu/device.h"
#include "pagoda/runtime.h"
#include "sim/process.h"

namespace pagoda::runtime {
namespace {

using gpu::Device;
using gpu::GpuSpec;
using sim::Simulation;

struct CounterArgs {
  int* execution_count;  // one per task; incremented by warp 0
};

gpu::KernelCoro counting_kernel(gpu::WarpCtx& ctx) {
  if (ctx.warp_in_task == 0 && ctx.compute()) {
    ctx.args_as<CounterArgs>().execution_count[0] += 1;
  }
  ctx.charge(50.0);
  ctx.charge_stall(100.0);
  co_return;
}

TaskParams counting_task(int* slot, int threads, int blocks, bool sync,
                         std::int32_t shmem) {
  TaskParams p;
  p.fn = counting_kernel;
  p.threads_per_block = threads;
  p.num_blocks = blocks;
  p.needs_sync = sync;
  p.shared_mem_bytes = shmem;
  p.set_args(CounterArgs{slot});
  return p;
}

// --- Fig 2: a task is not scheduled until its successor's copy arrives ----

sim::Process spawn_two_with_gap(Simulation& sim, Runtime& rt, int* counts,
                                sim::Duration gap, sim::Time& a_completed,
                                bool& done) {
  rt.set_completion_observer([&](TaskId, sim::Time t) {
    if (a_completed == 0) a_completed = t;
  });
  co_await rt.task_spawn(counting_task(&counts[0], 64, 1, false, 0));
  co_await sim.delay(gap);
  // Task A must NOT have executed during the gap: nothing released it.
  EXPECT_EQ(counts[0], 0) << "task ran before its successor's copy";
  EXPECT_EQ(a_completed, 0);
  co_await rt.task_spawn(counting_task(&counts[1], 64, 1, false, 0));
  co_await rt.wait_all();
  done = true;
}

TEST(TaskTableProtocol, PredecessorWaitsForSuccessorCopy) {
  Simulation sim;
  Device dev(sim, GpuSpec::titan_x());
  Runtime rt(dev);
  rt.start();
  int counts[2] = {0, 0};
  sim::Time a_completed = 0;
  bool done = false;
  // A long gap between the two spawns: A sits in (-1, 0) the whole time.
  sim.spawn(spawn_two_with_gap(sim, rt, counts, sim::milliseconds(1.0),
                               a_completed, done));
  sim.run_until(sim::seconds(1.0));
  ASSERT_TRUE(done);
  EXPECT_EQ(counts[0], 1);
  EXPECT_EQ(counts[1], 1);
  // A completed only after B's spawn (t > gap).
  EXPECT_GT(a_completed, sim::milliseconds(1.0));
  rt.shutdown();
}

// --- the flush path releases a stranded last task --------------------------

sim::Process spawn_one_then_wait(Simulation&, Runtime& rt, int* count,
                                 bool& done) {
  const TaskHandle h =
      co_await rt.task_spawn(counting_task(count, 64, 1, false, 0));
  co_await rt.wait(h);  // wait() must flush, else this deadlocks
  done = true;
}

TEST(TaskTableProtocol, FlushReleasesTheLastTask) {
  Simulation sim;
  Device dev(sim, GpuSpec::titan_x());
  Runtime rt(dev);
  rt.start();
  int count = 0;
  bool done = false;
  sim.spawn(spawn_one_then_wait(sim, rt, &count, done));
  sim.run_until(sim::seconds(1.0));
  ASSERT_TRUE(done);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(rt.stats().flushes, 1);
  rt.shutdown();
}

// --- steady state: exactly one entry copy per task --------------------------

sim::Process spawn_chain(Simulation&, Runtime& rt, std::vector<int>& c,
                         bool& done) {
  for (auto& slot : c) {
    co_await rt.task_spawn(counting_task(&slot, 96, 1, false, 0));
  }
  co_await rt.wait_all();
  done = true;
}

TEST(TaskTableProtocol, OneMemcpyPerTaskInSteadyState) {
  Simulation sim;
  Device dev(sim, GpuSpec::titan_x());
  Runtime rt(dev);
  rt.start();
  std::vector<int> counts(200, 0);
  bool done = false;
  sim.spawn(spawn_chain(sim, rt, counts, done));
  sim.run_until(sim::seconds(2.0));
  ASSERT_TRUE(done);
  // N spawn copies + 1 flush copy for the final task.
  EXPECT_EQ(rt.stats().entry_copies,
            static_cast<std::int64_t>(counts.size()) + rt.stats().flushes);
  EXPECT_EQ(rt.stats().flushes, 1);
  for (const int c : counts) EXPECT_EQ(c, 1);
  rt.shutdown();
}

// --- randomized protocol fuzz ------------------------------------------------

struct FuzzCase {
  std::uint64_t seed;
  int num_tasks;
};

class TaskTableFuzz
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

sim::Process fuzz_spawner(Simulation& sim, Runtime& rt, SplitMix64& rng,
                          std::vector<int>& counts, bool& done) {
  for (auto& slot : counts) {
    // Random shapes: threads 32..512, 1-3 blocks, random sync/shmem.
    const int threads = static_cast<int>(rng.next_in(1, 16)) * 32;
    const int blocks = static_cast<int>(rng.next_in(1, 3));
    const bool sync = threads <= 512 && (rng.next() & 1) != 0;
    const std::int32_t shmem =
        (rng.next() % 3 == 0)
            ? static_cast<std::int32_t>(rng.next_in(1, 16)) * 512
            : 0;
    co_await rt.task_spawn(counting_task(&slot, threads, blocks, sync, shmem));
    // Random pacing, including bursts.
    if (rng.next() % 4 == 0) {
      co_await sim.delay(sim::microseconds(rng.next_double() * 20.0));
    }
    // Occasionally interleave a wait_all mid-stream.
    if (rng.next() % 64 == 0) co_await rt.wait_all();
  }
  co_await rt.wait_all();
  done = true;
}

TEST_P(TaskTableFuzz, EveryTaskExecutesExactlyOnce) {
  const auto [seed, num_tasks] = GetParam();
  Simulation sim;
  GpuSpec spec = GpuSpec::titan_x();
  spec.num_smms = 4;  // small table -> heavy entry recycling
  Device dev(sim, spec);
  Runtime rt(dev);
  rt.start();
  SplitMix64 rng(seed);
  std::vector<int> counts(static_cast<std::size_t>(num_tasks), 0);
  bool done = false;
  sim.spawn(fuzz_spawner(sim, rt, rng, counts, done));
  sim.run_until(sim::seconds(10.0));
  ASSERT_TRUE(done) << "fuzz run did not complete (protocol deadlock?)";
  for (std::size_t i = 0; i < counts.size(); ++i) {
    ASSERT_EQ(counts[i], 1) << "task " << i << " executed " << counts[i]
                            << " times";
  }
  EXPECT_EQ(rt.master_kernel().tasks_completed(), num_tasks);
  rt.shutdown();
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, TaskTableFuzz,
    ::testing::Combine(::testing::Values(1u, 7u, 42u, 0xDEADBEEFu, 2026u),
                       ::testing::Values(300)));

// --- threadblock-granularity ablation with wide tasks --------------------------

TEST(TaskTableProtocol, ThreadblockGranularityHandlesWideTasks) {
  // A no-sync task wider than one MTB's 31 executor warps must stream in
  // groups rather than deadlock waiting for 32+ free slots.
  Simulation sim;
  GpuSpec spec = GpuSpec::titan_x();
  spec.num_smms = 1;
  Device dev(sim, spec);
  PagodaConfig cfg;
  cfg.threadblock_granularity = true;
  Runtime rt(dev, host::HostCosts{}, cfg);
  rt.start();
  std::vector<int> counts(8, 0);
  bool done = false;
  struct Wide {
    static sim::Process run(Runtime& rt, std::vector<int>& counts,
                            bool& done) {
      for (auto& slot : counts) {
        // 4 blocks x 512 threads = 64 warps, twice an MTB's executors.
        co_await rt.task_spawn(counting_task(&slot, 512, 4, false, 0));
      }
      co_await rt.wait_all();
      done = true;
    }
  };
  sim.spawn(Wide::run(rt, counts, done));
  sim.run_until(sim::seconds(5.0));
  ASSERT_TRUE(done) << "wide task deadlocked under threadblock granularity";
  for (const int c : counts) EXPECT_EQ(c, 1);
  rt.shutdown();
}

// --- wait_any (API extension) -------------------------------------------------

struct SlowArgs {
  int* counter;
  double cycles;
};

gpu::KernelCoro slow_kernel(gpu::WarpCtx& ctx) {
  if (ctx.warp_in_task == 0 && ctx.compute()) {
    ctx.args_as<SlowArgs>().counter[0] += 1;
  }
  ctx.charge(ctx.args_as<SlowArgs>().cycles);
  co_return;
}

sim::Process wait_any_user(Runtime& rt, int* counts, std::size_t& first,
                           bool& done) {
  std::vector<TaskHandle> handles;
  for (int t = 0; t < 3; ++t) {
    TaskParams p;
    p.fn = slow_kernel;
    p.threads_per_block = 32;
    // Task 1 is much shorter than tasks 0 and 2.
    p.set_args(SlowArgs{&counts[t], t == 1 ? 100.0 : 4.0e6});
    handles.push_back(co_await rt.task_spawn(p));
  }
  first = co_await rt.wait_any(handles);
  co_await rt.wait_all();
  done = true;
}

TEST(TaskTableProtocol, WaitAnyReturnsAFinishedTask) {
  Simulation sim;
  Device dev(sim, GpuSpec::titan_x());
  Runtime rt(dev);
  rt.start();
  int counts[3] = {0, 0, 0};
  std::size_t first = 99;
  bool done = false;
  sim.spawn(wait_any_user(rt, counts, first, done));
  sim.run_until(sim::seconds(5.0));
  ASSERT_TRUE(done);
  EXPECT_EQ(first, 1u);  // the short task finishes first
  for (const int c : counts) EXPECT_EQ(c, 1);
  rt.shutdown();
}

// --- two-copy ablation correctness -------------------------------------------

TEST(TaskTableProtocol, TwoCopySpawnExecutesEveryTaskOnce) {
  Simulation sim;
  GpuSpec spec = GpuSpec::titan_x();
  spec.num_smms = 2;
  Device dev(sim, spec);
  PagodaConfig cfg;
  cfg.two_copy_spawn = true;
  Runtime rt(dev, host::HostCosts{}, cfg);
  rt.start();
  std::vector<int> counts(300, 0);
  bool done = false;
  sim.spawn(spawn_chain(sim, rt, counts, done));
  sim.run_until(sim::seconds(5.0));
  ASSERT_TRUE(done);
  for (const int c : counts) EXPECT_EQ(c, 1);
  // Two copies per task, no flush needed (no pipelining chain).
  EXPECT_EQ(rt.stats().entry_copies, 600);
  EXPECT_EQ(rt.stats().flushes, 0);
  rt.shutdown();
}

}  // namespace
}  // namespace pagoda::runtime
