// Integration tests across runtimes: every scheme executes every supported
// workload to completion in Compute mode with verified outputs, and the
// paper's qualitative orderings hold at test scale.
#include <gtest/gtest.h>

#include <string>

#include "baselines/task_runtime.h"
#include "common/stats.h"
#include "harness/calibration.h"
#include "harness/experiment.h"

namespace pagoda::baselines {
namespace {

using harness::Measurement;
using harness::paper_platform;
using harness::run_experiment;
using harness::runtime_supports;

struct Case {
  std::string workload;
  std::string runtime;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  return info.param.workload + "_" + info.param.runtime;
}

class RuntimeWorkloadMatrix : public ::testing::TestWithParam<Case> {};

TEST_P(RuntimeWorkloadMatrix, ComputesVerifiedResults) {
  const Case& c = GetParam();
  workloads::WorkloadConfig wcfg;
  wcfg.num_tasks = 48;
  wcfg.threads_per_task = 96;
  baselines::RunConfig rcfg = paper_platform();
  rcfg.mode = gpu::ExecMode::Compute;  // run_experiment calls verify()
  if (!runtime_supports(c.workload, c.runtime, wcfg)) {
    GTEST_SKIP() << c.runtime << " does not support " << c.workload;
  }
  const Measurement m = run_experiment(c.workload, c.runtime, wcfg, rcfg);
  EXPECT_TRUE(m.result.completed);
  EXPECT_GT(m.result.elapsed, 0);
  EXPECT_EQ(m.result.tasks, 48);
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (const auto wl : workloads::all_workload_names()) {
    for (const char* rt : {"Sequential", "PThreads", "HyperQ", "GeMTC",
                           "Fusion", "Pagoda", "PagodaBatching"}) {
      cases.push_back(Case{std::string(wl), rt});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllPairs, RuntimeWorkloadMatrix,
                         ::testing::ValuesIn(all_cases()), case_name);

// --- qualitative orderings the paper reports ---------------------------------

TEST(Orderings, GemtcAndFusionCannotRunSlud) {
  workloads::WorkloadConfig wcfg;
  wcfg.num_tasks = 64;
  EXPECT_FALSE(runtime_supports("SLUD", "GeMTC", wcfg));
  EXPECT_FALSE(runtime_supports("SLUD", "Fusion", wcfg));
  EXPECT_TRUE(runtime_supports("SLUD", "Pagoda", wcfg));
  EXPECT_TRUE(runtime_supports("SLUD", "HyperQ", wcfg));
  EXPECT_TRUE(runtime_supports("SLUD", "PThreads", wcfg));
}

TEST(Orderings, PagodaBeatsHyperQOnIrregularCompute) {
  // MB with 128-thread tasks, compute only: HyperQ's 32-kernel limit leaves
  // the GPU underutilized (the paper's central claim).
  workloads::WorkloadConfig wcfg;
  wcfg.num_tasks = 512;
  baselines::RunConfig rcfg = paper_platform();
  rcfg.include_data_copies = false;
  const Measurement hq = run_experiment("MB", "HyperQ", wcfg, rcfg);
  const Measurement pa = run_experiment("MB", "Pagoda", wcfg, rcfg);
  EXPECT_GT(harness::speedup(hq, pa), 1.2);
}

TEST(Orderings, PagodaBeatsBatchingBeatsGemtcOnMpe) {
  // Fig 11's decomposition on the unbalanced multi-programmed mix.
  workloads::WorkloadConfig wcfg;
  wcfg.num_tasks = 2048;
  const baselines::RunConfig rcfg = paper_platform();
  const Measurement ge = run_experiment("MPE", "GeMTC", wcfg, rcfg);
  const Measurement pb = run_experiment("MPE", "PagodaBatching", wcfg, rcfg);
  const Measurement pa = run_experiment("MPE", "Pagoda", wcfg, rcfg);
  EXPECT_LT(pa.result.elapsed, pb.result.elapsed);
  EXPECT_LT(pa.result.elapsed, ge.result.elapsed);
}

TEST(Orderings, FusedLatencyGrowsPagodaLatencyFlat) {
  // Fig 10's defining property.
  baselines::RunConfig rcfg = paper_platform();
  rcfg.collect_latencies = true;
  auto avg_latency = [&](const char* rt, int tasks) {
    workloads::WorkloadConfig wcfg;
    wcfg.num_tasks = tasks;
    const Measurement m = run_experiment("MM", rt, wcfg, rcfg);
    return arithmetic_mean(m.result.task_latency_us);
  };
  const double fused_small = avg_latency("Fusion", 128);
  const double fused_large = avg_latency("Fusion", 1024);
  const double pagoda_small = avg_latency("Pagoda", 128);
  const double pagoda_large = avg_latency("Pagoda", 1024);
  EXPECT_GT(fused_large, 3.0 * fused_small);      // grows ~linearly
  EXPECT_LT(pagoda_large, 2.0 * pagoda_small);    // stays ~flat
}

TEST(Orderings, SludWavesExecuteInOrder) {
  // Tasks of wave w must not finish before every task of wave w-1 when run
  // through a wave-aware runtime.
  workloads::WorkloadConfig wcfg;
  wcfg.num_tasks = 60;
  baselines::RunConfig rcfg = paper_platform();
  rcfg.collect_latencies = true;  // also records per-task completion
  auto wl = workloads::make_workload("SLUD");
  wl->generate(wcfg);
  auto rt = make_runtime("Pagoda");
  const RunResult res = rt->run(*wl, rcfg);
  EXPECT_TRUE(res.completed);
  // Reconstruct per-wave bounds from latencies is indirect; instead assert
  // the workload exposes multiple waves and the run completed them all.
  EXPECT_GT(max_wave(*wl), 1);
  EXPECT_EQ(res.tasks, 60);
}

TEST(Orderings, TwoCopySpawnIsSlower) {
  // The §4.2.1 design argument: the naive 2-copy protocol loses to the
  // pipelined 1-copy protocol.
  workloads::WorkloadConfig wcfg;
  wcfg.num_tasks = 1024;
  baselines::RunConfig one = paper_platform();
  baselines::RunConfig two = paper_platform();
  two.pagoda.two_copy_spawn = true;
  const Measurement m1 = run_experiment("MM", "Pagoda", wcfg, one);
  const Measurement m2 = run_experiment("MM", "Pagoda", wcfg, two);
  EXPECT_GT(m2.result.elapsed, m1.result.elapsed);
}

TEST(Orderings, SharedMemoryVariantWinsWhenGpuBound) {
  // Table 5's effect, at a GPU-bound scale.
  workloads::WorkloadConfig with_shmem;
  with_shmem.num_tasks = 512;
  with_shmem.threads_per_task = 256;
  with_shmem.input_scale = 128;
  with_shmem.use_shared_memory = true;
  workloads::WorkloadConfig without = with_shmem;
  without.use_shared_memory = false;
  baselines::RunConfig rcfg = paper_platform();
  rcfg.include_data_copies = false;
  const Measurement sh = run_experiment("MM", "Pagoda", with_shmem, rcfg);
  const Measurement no = run_experiment("MM", "Pagoda", without, rcfg);
  EXPECT_LT(sh.result.elapsed, no.result.elapsed);
}

TEST(Orderings, WeakScalingCrossover) {
  // Fig 6: at tiny task counts HyperQ is competitive; at large counts
  // Pagoda wins clearly.
  const baselines::RunConfig rcfg = paper_platform();
  auto ratio_at = [&](int tasks) {
    workloads::WorkloadConfig wcfg;
    wcfg.num_tasks = tasks;
    const Measurement hq = run_experiment("3DES", "HyperQ", wcfg, rcfg);
    const Measurement pa = run_experiment("3DES", "Pagoda", wcfg, rcfg);
    return harness::speedup(hq, pa);
  };
  const double small = ratio_at(32);
  const double large = ratio_at(2048);
  EXPECT_GT(large, small);
  EXPECT_GT(large, 1.3);
}

}  // namespace
}  // namespace pagoda::baselines
