// Tests for the SIMT kernel-authoring helpers.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "gpu/simt.h"

namespace pagoda::gpu::simt {
namespace {

WarpCtx make_ctx(int warp_in_task, int threads_per_block, int num_blocks,
                 ExecMode mode = ExecMode::Compute) {
  WarpCtx ctx;
  ctx.warp_in_task = warp_in_task;
  ctx.warp_in_block = warp_in_task % ((threads_per_block + 31) / 32);
  ctx.block_index = warp_in_task / ((threads_per_block + 31) / 32);
  ctx.threads_per_block = threads_per_block;
  ctx.num_blocks = num_blocks;
  ctx.mode = mode;
  return ctx;
}

TEST(Simt, WarpIterationsPartitionElements) {
  // Sum of per-lane element counts over all warps must equal n, for many
  // (n, threads, blocks) shapes.
  for (const int n : {1, 31, 32, 100, 4096, 5000}) {
    for (const int tpb : {32, 96, 128, 256}) {
      for (const int blocks : {1, 2, 3}) {
        const int warps = (tpb + 31) / 32 * blocks;
        int total = 0;
        for (int w = 0; w < warps; ++w) {
          WarpCtx ctx = make_ctx(w, tpb, blocks);
          int count = 0;
          for_each_element(ctx, n, [&](int) { ++count; });
          total += count;
          // warp_iterations bounds the per-lane work (lane 0 is densest).
          int lane0 = 0;
          for (int i = ctx.tid(0); i < n; i += total_threads(ctx)) ++lane0;
          EXPECT_EQ(warp_iterations(ctx, n), lane0);
        }
        EXPECT_EQ(total, n) << "n=" << n << " tpb=" << tpb
                            << " blocks=" << blocks;
      }
    }
  }
}

TEST(Simt, ForEachElementVisitsEachIndexOnce) {
  const int n = 1000;
  std::vector<int> visits(n, 0);
  const int tpb = 96;
  const int warps = 3;
  for (int w = 0; w < warps; ++w) {
    WarpCtx ctx = make_ctx(w, tpb, 1);
    for_each_element(ctx, n, [&](int i) { visits[static_cast<size_t>(i)]++; });
  }
  for (int i = 0; i < n; ++i) EXPECT_EQ(visits[static_cast<size_t>(i)], 1);
}

TEST(Simt, ForEachElementSkipsBodyInModelMode) {
  WarpCtx ctx = make_ctx(0, 32, 1, ExecMode::Model);
  int count = 0;
  for_each_element(ctx, 100, [&](int) { ++count; });
  EXPECT_EQ(count, 0);
  for_each_element_always(ctx, 100, [&](int) { ++count; });
  EXPECT_GT(count, 0);
}

TEST(Simt, ChargeElementsIsModeIndependent) {
  for (const ExecMode mode : {ExecMode::Compute, ExecMode::Model}) {
    WarpCtx ctx = make_ctx(1, 128, 1, mode);
    charge_elements(ctx, 4096, 10.0, 20.0);
    // 4096 elements / 128 threads = 32 iterations per warp.
    EXPECT_DOUBLE_EQ(ctx.take_charge(), 320.0);
    EXPECT_DOUBLE_EQ(ctx.take_stall(), 640.0);
  }
}

TEST(Simt, TailWarpChargesNothingBeyondRange) {
  // n smaller than this warp's first tid: no iterations, no charge.
  WarpCtx ctx = make_ctx(3, 128, 1);  // tids 96..127
  charge_elements(ctx, 50, 10.0, 20.0);
  EXPECT_DOUBLE_EQ(ctx.take_charge(), 0.0);
  EXPECT_DOUBLE_EQ(ctx.take_stall(), 0.0);
  EXPECT_EQ(warp_iterations(ctx, 50), 0);
}

}  // namespace
}  // namespace pagoda::gpu::simt
