// The determinism soak for the sharded simulation core.
//
// For every seed, one cluster serving run is executed three ways:
//   * global     — the pre-shard single event queue (--sim-core=global);
//   * sharded/1  — per-node shards, sequential driver (the default);
//   * sharded/N  — per-node shards drained by an N-thread worker pool.
// The full --metrics JSON (and, on alternating seeds, the --trace-spans
// dump) must be byte-identical across all three. Seeds rotate through a
// plain run, a fault-plan run, a power-plane run, a migration run (a
// rolling resize checkpointing in-flight attempts across nodes) and an
// oversubscribed virtual-resource run, so the serialize fallbacks
// (require_serial) are pinned alongside the true parallel path.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "harness/calibration.h"
#include "harness/experiment.h"
#include "obs/collector.h"

namespace pagoda {
namespace {

constexpr int kSeeds = 50;
constexpr int kWorkerThreads = 3;

enum class Plane { kPlain, kFaults, kPower, kMigrate, kVres };
constexpr int kNumPlanes = 5;

struct Dump {
  std::string metrics;
  std::string spans;
};

/// One small fixed-workload cluster run; returns the observability bytes.
Dump run_once(std::uint64_t seed, Plane plane, bool want_spans,
              bool global_queue, int sim_threads) {
  workloads::WorkloadConfig wcfg;
  wcfg.num_tasks = 64;
  wcfg.threads_per_task = 128;
  wcfg.seed = seed;

  baselines::RunConfig rcfg = harness::paper_platform();
  rcfg.mode = gpu::ExecMode::Model;
  rcfg.collect_latencies = true;
  rcfg.cluster.specs = {gpu::GpuSpec::titan_x(), gpu::GpuSpec::titan_x(),
                        gpu::GpuSpec::tesla_k40()};
  rcfg.cluster.policy = "least-loaded";
  rcfg.cluster.arrival = "poisson:150000";
  rcfg.cluster.slo = sim::microseconds(5000.0);
  rcfg.cluster.seed = seed;
  rcfg.cluster.global_queue = global_queue;
  rcfg.cluster.sim_threads = sim_threads;
  if (plane == Plane::kFaults) {
    rcfg.cluster.faults = "task:0.05,xfer:0.02";
    rcfg.cluster.task_timeout = sim::microseconds(4000.0);
  } else if (plane == Plane::kPower) {
    rcfg.cluster.power = "default";
    rcfg.cluster.governor = "dvfs";
  } else if (plane == Plane::kMigrate) {
    // A rolling resize over the arrival window: the shrink drains two nodes
    // whose in-flight attempts checkpoint and restore cross-node, then the
    // grow wakes them — migration traffic in every run of the triplet. The
    // stream oversubscribes shallow TaskTables so the drains catch work at
    // every safe point (slot-queue waiters, staged copies, parked entries).
    wcfg.num_tasks = 192;
    wcfg.threads_per_task = 256;
    rcfg.pagoda.rows_per_column = 4;
    rcfg.cluster.arrival = "poisson:2000000";
    rcfg.cluster.power = "default";
    rcfg.cluster.migrate = true;
    rcfg.cluster.resize = "100:1,1200:3";
  } else if (plane == Plane::kVres) {
    // Oversubscribed virtual resource plane: irregular DCT declares the full
    // 8 KB slab but touches less, so admission, shmem spill/reclaim and the
    // vres-aware placement all run hot. Spill transfers are node-local
    // deterministic delays, so the shard triplet must still agree bytewise.
    wcfg.irregular_sizes = true;
    rcfg.pagoda.oversub = 1.5;
    rcfg.cluster.policy = "vres-aware";
  }

  obs::CollectorConfig ccfg;
  ccfg.sample_period = sim::microseconds(20.0);
  ccfg.spans = want_spans;
  obs::Collector collector(ccfg);
  rcfg.collector = &collector;

  const char* workload = plane == Plane::kVres ? "DCT" : "MM";
  const harness::Measurement m =
      harness::run_experiment(workload, "Cluster", wcfg, rcfg);

  Dump d;
  std::ostringstream metrics;
  m.metrics.write_json(metrics);
  d.metrics = metrics.str();
  if (want_spans) {
    std::ostringstream spans;
    collector.request_tracer().write_json(spans);
    d.spans = spans.str();
  }
  return d;
}

TEST(ShardEquivalenceSoak, FiftySeedsTriModal) {
  for (int i = 0; i < kSeeds; ++i) {
    const std::uint64_t seed = 0x9A60DAULL + static_cast<std::uint64_t>(i);
    const Plane plane = static_cast<Plane>(i % kNumPlanes);
    // Odd seeds dump spans too. Spans pin the serialize fallback; even
    // seeds without spans let the N-thread run exercise real parallel
    // windows, pinning the window merge against the sequential order.
    const bool spans = (i % 2) == 1;

    const Dump global = run_once(seed, plane, spans, true, 1);
    const Dump seq = run_once(seed, plane, spans, false, 1);
    const Dump par = run_once(seed, plane, spans, false, kWorkerThreads);

    ASSERT_EQ(global.metrics, seq.metrics)
        << "seed " << seed << ": sharded-sequential metrics diverged from "
        << "the global queue";
    ASSERT_EQ(seq.metrics, par.metrics)
        << "seed " << seed << ": " << kWorkerThreads
        << "-thread metrics diverged from sequential";
    if (spans) {
      ASSERT_EQ(global.spans, seq.spans) << "seed " << seed;
      ASSERT_EQ(seq.spans, par.spans) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace pagoda
