// Property tests for the simulation core: conservation laws of the
// processor-sharing resource, FIFO ordering laws of the DMA link, event
// queue stress with random cancellation, and determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "sim/link.h"
#include "sim/ps_resource.h"
#include "sim/simulation.h"

namespace pagoda::sim {
namespace {

class PsResourceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PsResourceProperty, WorkConservationAndMonotoneCompletion) {
  SplitMix64 rng(GetParam());
  Simulation sim;
  const double capacity = 1.0 + static_cast<double>(rng.next_below(8));
  PsResource res(sim, capacity, 1.0);

  struct Job {
    double work;
    Time submit;
    Time done = -1;
  };
  std::vector<Job> jobs(64);
  double total_work = 0.0;
  for (auto& j : jobs) {
    j.work = 0.5 + rng.next_double() * 4.0;
    j.submit = static_cast<Time>(rng.next_below(static_cast<std::uint64_t>(
        seconds(2.0))));
    total_work += j.work;
  }
  for (auto& j : jobs) {
    sim.at(j.submit, [&res, &j, &sim] {
      res.submit(j.work, [&j, &sim] { j.done = sim.now(); });
    });
  }
  sim.run();

  Time last_done = 0;
  for (const Job& j : jobs) {
    ASSERT_GE(j.done, 0) << "job never completed";
    // No job can finish faster than its work at the per-job cap.
    EXPECT_GE(j.done - j.submit,
              static_cast<Duration>(j.work * 1e12) - 2);
    last_done = std::max(last_done, j.done);
  }
  // Work conservation: the busy integral equals the total work (the server
  // never idles while jobs are active, and serves exactly what was asked).
  EXPECT_NEAR(res.busy_work_seconds(), total_work, total_work * 1e-6);
  // Makespan lower bound: total work can't be served faster than capacity.
  EXPECT_GE(to_seconds(last_done), total_work / capacity * 0.999 -
                                       to_seconds(seconds(2.0)));
  EXPECT_EQ(res.active_jobs(), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PsResourceProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21));

TEST(PsResourceProperty, EqualJobsCompleteTogetherRegardlessOfCount) {
  for (const int n : {1, 2, 5, 17, 64}) {
    Simulation sim;
    PsResource res(sim, 4.0, 1.0);
    std::vector<Time> done;
    for (int i = 0; i < n; ++i) {
      res.submit(2.0, [&] { done.push_back(sim.now()); });
    }
    sim.run();
    ASSERT_EQ(static_cast<int>(done.size()), n);
    for (const Time t : done) EXPECT_EQ(t, done.front());
    // n <= 4: rate capped at 1 -> 2s. n > 4: shared -> 2n/4 seconds.
    const double expected = n <= 4 ? 2.0 : 2.0 * n / 4.0;
    EXPECT_NEAR(to_seconds(done.front()), expected, 1e-6);
  }
}

class LinkProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LinkProperty, CompletionsAreFifoAndWireConserving) {
  SplitMix64 rng(GetParam());
  Simulation sim;
  Link link(sim, 1e9, microseconds(2.0), nanoseconds(500.0));
  std::vector<int> completion_order;
  std::int64_t total_bytes = 0;
  constexpr int kTransfers = 100;
  Duration expected_busy = 0;
  for (int i = 0; i < kTransfers; ++i) {
    const auto bytes = static_cast<std::int64_t>(rng.next_in(1, 8000));
    total_bytes += bytes;
    // At 1e9 B/s one byte occupies the wire for 1 ns = 1000 ps.
    expected_busy += std::max<Duration>(nanoseconds(500.0),
                                        static_cast<Duration>(bytes) * 1000);
    const Duration jitter =
        static_cast<Duration>(rng.next_below(static_cast<std::uint64_t>(
            microseconds(50.0))));
    sim.after(jitter, [&link, &completion_order, i, bytes] {
      link.transfer(bytes, [&completion_order, i] {
        completion_order.push_back(i);
      });
    });
  }
  sim.run();
  ASSERT_EQ(completion_order.size(), static_cast<std::size_t>(kTransfers));
  // FIFO within equal issue times is guaranteed; across different issue
  // times the engine is still non-overtaking: completion order must be
  // sorted by (service start), which equals issue order here because the
  // engine is work-conserving and single-served. Weak check: the busy time
  // matches the sum of wire slots exactly.
  EXPECT_EQ(link.busy_time(), expected_busy);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinkProperty, ::testing::Values(3, 9, 27));

TEST(EventQueueStress, RandomScheduleAndCancel) {
  SplitMix64 rng(99);
  Simulation sim;
  std::vector<Time> fired;
  std::vector<EventId> ids;
  int cancelled_fired = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto t = static_cast<Time>(rng.next_below(1000000));
    ids.push_back(sim.at(t, [&fired, &sim] { fired.push_back(sim.now()); }));
  }
  // Cancel a random third; a second cancel of the same id must return
  // false and not disturb the accounting.
  int cancelled = 0;
  for (const EventId id : ids) {
    if (rng.next() % 3 == 0 && sim.cancel(id)) {
      ++cancelled;
      EXPECT_FALSE(sim.cancel(id));
    }
  }
  sim.run();
  (void)cancelled_fired;
  EXPECT_EQ(fired.size(), ids.size() - static_cast<std::size_t>(cancelled));
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
}

TEST(Determinism, IdenticalSeedsIdenticalTraces) {
  auto run_once = [](std::uint64_t seed) {
    SplitMix64 rng(seed);
    Simulation sim;
    PsResource res(sim, 3.0, 1.0);
    std::vector<Time> done;
    for (int i = 0; i < 50; ++i) {
      sim.after(static_cast<Duration>(rng.next_below(10000)),
                [&res, &rng, &done, &sim] {
                  res.submit(1.0 + rng.next_double(),
                             [&done, &sim] { done.push_back(sim.now()); });
                });
    }
    sim.run();
    return done;
  };
  EXPECT_EQ(run_once(5), run_once(5));
  EXPECT_NE(run_once(5), run_once(6));
}

}  // namespace
}  // namespace pagoda::sim
