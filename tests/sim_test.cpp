// Unit tests for the discrete-event core: event ordering, cancellation,
// processes, synchronization primitives, processor sharing, links.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/link.h"
#include "sim/process.h"
#include "sim/ps_resource.h"
#include "sim/simulation.h"
#include "sim/sync.h"

namespace pagoda::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.after(30, [&] { order.push_back(3); });
  sim.after(10, [&] { order.push_back(1); });
  sim.after(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(EventQueue, SameTimeIsFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    sim.after(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsFiring) {
  Simulation sim;
  bool fired = false;
  const EventId id = sim.after(10, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // second cancel is a no-op
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelAfterFireIsNoop) {
  Simulation sim;
  const EventId id = sim.after(1, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(EventQueue, EventsCanScheduleEvents) {
  Simulation sim;
  int hits = 0;
  sim.after(1, [&] {
    ++hits;
    sim.after(1, [&] { ++hits; });
  });
  sim.run();
  EXPECT_EQ(hits, 2);
  EXPECT_EQ(sim.now(), 2);
}

TEST(Simulation, RunUntilStopsAtTime) {
  Simulation sim;
  int hits = 0;
  sim.after(10, [&] { ++hits; });
  sim.after(20, [&] { ++hits; });
  sim.run_until(15);
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(sim.now(), 15);
  sim.run();
  EXPECT_EQ(hits, 2);
}

Process delayer(Simulation& sim, std::vector<Time>& trace) {
  trace.push_back(sim.now());
  co_await sim.delay(microseconds(1));
  trace.push_back(sim.now());
  co_await sim.delay(microseconds(2));
  trace.push_back(sim.now());
}

TEST(Process, DelaysAdvanceClock) {
  Simulation sim;
  std::vector<Time> trace;
  sim.spawn(delayer(sim, trace));
  sim.run();
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[0], 0);
  EXPECT_EQ(trace[1], microseconds(1));
  EXPECT_EQ(trace[2], microseconds(3));
}

Process joiner_child(Simulation& sim, int& state) {
  co_await sim.delay(100);
  state = 1;
}

Process joiner_parent(Simulation& sim, Joinable child, int& state,
                      int& observed) {
  co_await child.join();
  observed = state;
  co_await sim.delay(1);
}

TEST(Process, JoinWaitsForCompletion) {
  Simulation sim;
  int state = 0;
  int observed = -1;
  Joinable child = sim.spawn(joiner_child(sim, state));
  sim.spawn(joiner_parent(sim, child, state, observed));
  sim.run();
  EXPECT_EQ(observed, 1);
}

Process join_after_done(Simulation& sim, Joinable child, Time& joined_at) {
  co_await sim.delay(microseconds(1));  // well past child's completion
  co_await child.join();
  joined_at = sim.now();
}

TEST(Process, JoinOnFinishedProcessReturnsImmediately) {
  Simulation sim;
  int state = 0;
  Joinable child = sim.spawn(joiner_child(sim, state));
  Time joined_at = -1;
  sim.spawn(join_after_done(sim, child, joined_at));
  sim.run();
  EXPECT_EQ(state, 1);
  EXPECT_TRUE(child.done());
  EXPECT_EQ(joined_at, microseconds(1));
}

TEST(Process, UnspawnedProcessDoesNotLeak) {
  Simulation sim;
  int state = 0;
  {
    Process p = joiner_child(sim, state);
    (void)p;
  }  // destroyed without spawn; ASAN would flag a leak if mishandled
  sim.run();
  EXPECT_EQ(state, 0);
}

Process cv_waiter(Condition& cv, int& wakeups) {
  co_await cv.wait();
  ++wakeups;
}

TEST(Condition, NotifyAllWakesEveryWaiter) {
  Simulation sim;
  Condition cv(sim);
  int wakeups = 0;
  for (int i = 0; i < 3; ++i) sim.spawn(cv_waiter(cv, wakeups));
  sim.after(10, [&] { cv.notify_all(); });
  sim.run();
  EXPECT_EQ(wakeups, 3);
}

TEST(Condition, NotifyOneWakesSingleWaiter) {
  Simulation sim;
  Condition cv(sim);
  int wakeups = 0;
  for (int i = 0; i < 3; ++i) sim.spawn(cv_waiter(cv, wakeups));
  sim.after(10, [&] { cv.notify_one(); });
  sim.run_until(20);
  EXPECT_EQ(wakeups, 1);
  EXPECT_EQ(cv.waiter_count(), 2u);
  cv.notify_all();
  sim.run();
  EXPECT_EQ(wakeups, 3);
}

Process timed_waiter(Simulation& sim, Condition& cv, Duration d, bool& result,
                     Time& at) {
  result = co_await cv.wait_for(d);
  at = sim.now();
}

TEST(Condition, WaitForTimesOut) {
  Simulation sim;
  Condition cv(sim);
  bool notified = true;
  Time at = -1;
  sim.spawn(timed_waiter(sim, cv, microseconds(5), notified, at));
  sim.run();
  EXPECT_FALSE(notified);
  EXPECT_EQ(at, microseconds(5));
  EXPECT_EQ(cv.waiter_count(), 0u);
}

TEST(Condition, WaitForNotifiedBeforeTimeout) {
  Simulation sim;
  Condition cv(sim);
  bool notified = false;
  Time at = -1;
  sim.spawn(timed_waiter(sim, cv, microseconds(5), notified, at));
  sim.after(microseconds(2), [&] { cv.notify_all(); });
  sim.run();
  EXPECT_TRUE(notified);
  EXPECT_EQ(at, microseconds(2));
}

Process trigger_waiter(Trigger& t, int& wakeups) {
  co_await t.wait();
  ++wakeups;
}

TEST(Trigger, ReleasesCurrentAndFutureWaiters) {
  Simulation sim;
  Trigger t(sim);
  int wakeups = 0;
  sim.spawn(trigger_waiter(t, wakeups));
  sim.after(10, [&] { t.fire(); });
  sim.run();
  EXPECT_EQ(wakeups, 1);
  EXPECT_TRUE(t.fired());
  sim.spawn(trigger_waiter(t, wakeups));  // already fired: immediate
  sim.run();
  EXPECT_EQ(wakeups, 2);
}

Process sem_user(Simulation& sim, Semaphore& s, int& active, int& peak) {
  co_await s.acquire();
  ++active;
  peak = std::max(peak, active);
  co_await sim.delay(microseconds(1));
  --active;
  s.release();
}

TEST(Semaphore, LimitsConcurrency) {
  Simulation sim;
  Semaphore sem(sim, 2);
  int active = 0;
  int peak = 0;
  for (int i = 0; i < 6; ++i) sim.spawn(sem_user(sim, sem, active, peak));
  sim.run();
  EXPECT_EQ(peak, 2);
  EXPECT_EQ(active, 0);
  // 6 jobs, 2 at a time, 1us each => 3us total.
  EXPECT_EQ(sim.now(), microseconds(3));
}

// --- Processor sharing ------------------------------------------------------

TEST(PsResource, SingleJobRunsAtCappedRate) {
  Simulation sim;
  // Capacity 4 units/s, per-job cap 1 unit/s: a lone job gets rate 1.
  PsResource res(sim, 4.0, 1.0);
  Time done_at = -1;
  res.submit(2.0, [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_EQ(done_at, seconds(2.0));
}

TEST(PsResource, JobsBelowCapacityDontInterfere) {
  Simulation sim;
  PsResource res(sim, 4.0, 1.0);
  std::vector<Time> done(3, -1);
  for (int i = 0; i < 3; ++i) {
    res.submit(1.0, [&done, i, &sim] { done[static_cast<size_t>(i)] = sim.now(); });
  }
  sim.run();
  // 3 jobs <= 4 capacity: each runs at its cap of 1 unit/s.
  for (Time t : done) EXPECT_EQ(t, seconds(1.0));
}

TEST(PsResource, OversubscriptionSharesEqually) {
  Simulation sim;
  PsResource res(sim, 4.0, 1.0);
  int completions = 0;
  Time done_at = -1;
  for (int i = 0; i < 8; ++i) {
    res.submit(1.0, [&] {
      ++completions;
      done_at = sim.now();
    });
  }
  sim.run();
  EXPECT_EQ(completions, 8);
  // 8 equal jobs on capacity 4: each served at 0.5 units/s -> 2 seconds.
  EXPECT_NEAR(to_seconds(done_at), 2.0, 1e-9);
}

TEST(PsResource, LateArrivalSlowsEveryone) {
  Simulation sim;
  PsResource res(sim, 1.0, 1.0);  // pure PS, capacity 1
  Time first_done = -1;
  Time second_done = -1;
  res.submit(1.0, [&] { first_done = sim.now(); });
  sim.after(seconds(0.5), [&] {
    res.submit(0.25, [&] { second_done = sim.now(); });
  });
  sim.run();
  // Job A alone for 0.5s (0.5 done). Then shares: both at rate 0.5.
  // Job B needs 0.25 units -> done at 0.5 + 0.5 = 1.0s.
  // Job A then has 0.25 left alone at rate 1 -> done at 1.25s.
  EXPECT_NEAR(to_seconds(second_done), 1.0, 1e-9);
  EXPECT_NEAR(to_seconds(first_done), 1.25, 1e-9);
}

TEST(PsResource, ZeroWorkCompletesImmediately) {
  Simulation sim;
  PsResource res(sim, 1.0, 1.0);
  Time done_at = -1;
  sim.after(10, [&] { res.submit(0.0, [&] { done_at = sim.now(); }); });
  sim.run();
  EXPECT_EQ(done_at, 10);
}

TEST(PsResource, BusyIntegralTracksUtilizedCapacity) {
  Simulation sim;
  PsResource res(sim, 4.0, 1.0);
  // 2 jobs of 1 unit: utilized capacity = 2 for 1s => 2 work-unit-seconds.
  res.submit(1.0, [] {});
  res.submit(1.0, [] {});
  sim.run();
  EXPECT_NEAR(res.busy_work_seconds(), 2.0, 1e-9);
  EXPECT_NEAR(res.job_seconds(), 2.0, 1e-9);
}

TEST(PsResource, ManyJobsCompleteExactly) {
  Simulation sim;
  PsResource res(sim, 4.0, 1.0);
  int completions = 0;
  constexpr int kJobs = 1000;
  for (int i = 0; i < kJobs; ++i) {
    res.submit(1.0 + (i % 7), [&] { ++completions; });
  }
  sim.run();
  EXPECT_EQ(completions, kJobs);
  EXPECT_EQ(res.active_jobs(), 0);
}

// --- Link -------------------------------------------------------------------

TEST(Link, LatencyPlusBandwidth) {
  Simulation sim;
  Link link(sim, /*bandwidth=*/1e9, /*latency=*/microseconds(8));
  Time done_at = -1;
  link.transfer(1000, [&] { done_at = sim.now(); });
  sim.run();
  // 8us latency + 1000B / 1GB/s = 1us.
  EXPECT_EQ(done_at, microseconds(9));
}

TEST(Link, TransfersServiceInFifoOrder) {
  Simulation sim;
  Link link(sim, 1e9, 0);
  std::vector<Time> done(2, -1);
  link.transfer(1000, [&] { done[0] = sim.now(); });
  link.transfer(1000, [&] { done[1] = sim.now(); });
  sim.run();
  // One DMA engine: the second transfer waits for the first's wire slot.
  EXPECT_EQ(done[0], microseconds(1));
  EXPECT_EQ(done[1], microseconds(2));
}

TEST(Link, LatencyPipelinesAcrossSmallTransfers) {
  Simulation sim;
  // 1 GB/s, 8us completion latency, 0.5us per-transaction gap.
  Link link(sim, 1e9, microseconds(8), nanoseconds(500));
  std::vector<Time> done;
  for (int i = 0; i < 4; ++i) {
    link.transfer(100, [&] { done.push_back(sim.now()); });
  }
  sim.run();
  // Wire slots at 0.5us spacing (gap > 100B/1GBps); each lands 8us after
  // its slot ends: completions at 8.5, 9.0, 9.5, 10.0 us — NOT at 8us
  // intervals. This pipelining is what sustains Pagoda's spawn rate.
  ASSERT_EQ(done.size(), 4u);
  EXPECT_EQ(done[0], nanoseconds(8500));
  EXPECT_EQ(done[1], nanoseconds(9000));
  EXPECT_EQ(done[2], nanoseconds(9500));
  EXPECT_EQ(done[3], nanoseconds(10000));
}

TEST(Link, BusyTimeTracksWireOccupancy) {
  Simulation sim;
  Link link(sim, 1e9, 0);
  link.transfer(2000, [] {});
  link.transfer(3000, [] {});
  sim.run();
  EXPECT_EQ(link.busy_time(), microseconds(5));
}

TEST(Link, LoneTransferUsesFullBandwidth) {
  Simulation sim;
  Link link(sim, 12e9, microseconds(8));
  Time done_at = -1;
  link.transfer(12'000'000, [&] { done_at = sim.now(); });  // 12MB
  sim.run();
  EXPECT_EQ(done_at, microseconds(8) + milliseconds(1));
}

}  // namespace
}  // namespace pagoda::sim
