// DES / Triple-DES correctness against published test vectors.
#include <gtest/gtest.h>

#include <vector>

#include "workloads/des_core.h"

namespace pagoda::workloads {
namespace {

// The classic worked example (Stallings / FIPS walkthrough).
TEST(Des, KnownVectorEncrypts) {
  const auto ks = des_key_schedule(0x133457799BBCDFF1ULL);
  EXPECT_EQ(des_encrypt_block(0x0123456789ABCDEFULL, ks),
            0x85E813540F0AB405ULL);
}

TEST(Des, DecryptInvertsEncrypt) {
  const auto ks = des_key_schedule(0x0E329232EA6D0D73ULL);
  const std::uint64_t pt = 0x8787878787878787ULL;
  const std::uint64_t ct = des_encrypt_block(pt, ks);
  EXPECT_EQ(ct, 0x0000000000000000ULL);  // another published vector
  EXPECT_EQ(des_decrypt_block(ct, ks), pt);
}

TEST(Des, RoundTripManyBlocks) {
  const auto ks = des_key_schedule(0xDEADBEEF01234567ULL);
  for (std::uint64_t i = 0; i < 256; ++i) {
    const std::uint64_t pt = i * 0x9E3779B97F4A7C15ULL;
    EXPECT_EQ(des_decrypt_block(des_encrypt_block(pt, ks), ks), pt);
  }
}

TEST(TripleDes, DegeneratesToSingleDesWithEqualKeys) {
  // E(k, D(k, E(k, x))) == E(k, x).
  const std::uint64_t k = 0x133457799BBCDFF1ULL;
  const auto tk = triple_des_key(k, k, k);
  const auto ks = des_key_schedule(k);
  const std::uint64_t pt = 0x0123456789ABCDEFULL;
  EXPECT_EQ(triple_des_encrypt_block(pt, tk), des_encrypt_block(pt, ks));
}

TEST(TripleDes, RoundTripWithDistinctKeys) {
  const auto tk = triple_des_key(0x0123456789ABCDEFULL, 0x23456789ABCDEF01ULL,
                                 0x456789ABCDEF0123ULL);
  for (std::uint64_t i = 0; i < 64; ++i) {
    const std::uint64_t pt = i * 0xD1B54A32D192ED03ULL + 7;
    const std::uint64_t ct = triple_des_encrypt_block(pt, tk);
    EXPECT_NE(ct, pt);
    EXPECT_EQ(triple_des_decrypt_block(ct, tk), pt);
  }
}

TEST(TripleDes, EcbSpansRoundTrip) {
  const auto tk = triple_des_key(1, 2, 3);
  std::vector<std::uint64_t> pt(100);
  for (std::size_t i = 0; i < pt.size(); ++i) pt[i] = i * 12345 + 678;
  std::vector<std::uint64_t> ct(pt.size());
  std::vector<std::uint64_t> back(pt.size());
  triple_des_encrypt_ecb(pt, ct, tk);
  triple_des_decrypt_ecb(ct, back, tk);
  EXPECT_EQ(back, pt);
}

}  // namespace
}  // namespace pagoda::workloads
