// Host model tests: the 20-core CPU cluster used by the PThreads baseline.
#include <gtest/gtest.h>

#include "host/host_api.h"
#include "sim/simulation.h"

namespace pagoda::host {
namespace {

TEST(CpuCluster, SingleTaskRunsAtOneCoreSpeed) {
  sim::Simulation sim;
  CpuCluster cpu(sim, 20, 1e9);
  sim::Time done_at = -1;
  cpu.run_async(1e6, [&] { done_at = sim.now(); });  // 1M ops at 1Gops/s
  sim.run();
  EXPECT_EQ(done_at, sim::milliseconds(1.0));
}

TEST(CpuCluster, TwentyTasksUseTwentyCores) {
  sim::Simulation sim;
  CpuCluster cpu(sim, 20, 1e9);
  int done = 0;
  sim::Time last = 0;
  for (int i = 0; i < 20; ++i) {
    cpu.run_async(1e6, [&] {
      ++done;
      last = sim.now();
    });
  }
  sim.run();
  EXPECT_EQ(done, 20);
  EXPECT_EQ(last, sim::milliseconds(1.0));  // perfectly parallel
}

TEST(CpuCluster, OversubscriptionShares) {
  sim::Simulation sim;
  CpuCluster cpu(sim, 20, 1e9);
  sim::Time last = 0;
  for (int i = 0; i < 40; ++i) {
    cpu.run_async(1e6, [&] { last = sim.now(); });
  }
  sim.run();
  // 40 equal jobs on 20 cores: 2x the single-task time.
  EXPECT_NEAR(sim::to_milliseconds(last), 2.0, 1e-6);
  EXPECT_NEAR(cpu.busy_core_seconds(), 40e6 / 1e9, 1e-9);
}

TEST(HostCosts, DefaultsAreSane) {
  const HostCosts costs;
  EXPECT_GT(costs.kernel_launch, costs.task_spawn_fill);
  EXPECT_GT(costs.memcpy_setup, 0);
  EXPECT_GT(costs.malloc_cost, 0);
}

}  // namespace
}  // namespace pagoda::host
