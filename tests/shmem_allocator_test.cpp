// Tests for the buddy shared-memory allocator (paper §5.1), including the
// exact scenarios of Figs 3-4 and property-style sweeps.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <set>
#include <vector>

#include "common/rng.h"
#include "pagoda/shmem_allocator.h"

namespace pagoda::runtime {
namespace {

TEST(ShmemAllocator, TreeHas127NodesFor32K) {
  ShmemAllocator a;  // 32KB arena, 512B granularity
  EXPECT_EQ(a.node_count(), 127);
  EXPECT_EQ(a.arena_bytes(), 32 * 1024);
  EXPECT_EQ(a.granularity(), 512);
}

TEST(ShmemAllocator, BlockSizeRounding) {
  ShmemAllocator a;
  EXPECT_EQ(a.block_size_for(1), 512);
  EXPECT_EQ(a.block_size_for(512), 512);
  EXPECT_EQ(a.block_size_for(513), 1024);
  EXPECT_EQ(a.block_size_for(8 * 1024), 8 * 1024);
  EXPECT_EQ(a.block_size_for(9 * 1024), 16 * 1024);
  EXPECT_EQ(a.block_size_for(32 * 1024), 32 * 1024);
}

TEST(ShmemAllocator, Fig3AllocateEightK) {
  // A completely free tree receives an 8K request: succeeds at offset 0.
  ShmemAllocator a;
  const auto off = a.allocate(8 * 1024);
  ASSERT_TRUE(off.has_value());
  EXPECT_EQ(*off, 0);
  EXPECT_EQ(a.allocated_bytes(), 8 * 1024);
  // Its buddy (next 8K) remains allocatable.
  const auto buddy = a.allocate(8 * 1024);
  ASSERT_TRUE(buddy.has_value());
  EXPECT_EQ(*buddy, 8 * 1024);
}

TEST(ShmemAllocator, Fig4DeallocationMergesWithFreeSibling) {
  ShmemAllocator a;
  const auto x = a.allocate(4 * 1024);
  const auto y = a.allocate(4 * 1024);
  ASSERT_TRUE(x && y);
  a.deallocate(*x);
  // Sibling still allocated: the parent 8K must NOT be allocatable as a
  // whole, but x's 4K region is.
  EXPECT_FALSE(a.allocate(32 * 1024).has_value());
  const auto x2 = a.allocate(4 * 1024);
  ASSERT_TRUE(x2.has_value());
  EXPECT_EQ(*x2, *x);
  a.deallocate(*x2);
  a.deallocate(*y);
  // Fully merged again: the whole arena is allocatable.
  const auto whole = a.allocate(32 * 1024);
  ASSERT_TRUE(whole.has_value());
  EXPECT_EQ(*whole, 0);
}

TEST(ShmemAllocator, AncestorMarkingBlocksOverlappingAllocations) {
  ShmemAllocator a;
  const auto small = a.allocate(512);
  ASSERT_TRUE(small.has_value());
  // Any block that would contain the 512B allocation is unavailable; the
  // first free 1K lives next to it.
  const auto onek = a.allocate(1024);
  ASSERT_TRUE(onek.has_value());
  EXPECT_GE(*onek, 1024);
}

TEST(ShmemAllocator, ExhaustionReturnsNullopt) {
  ShmemAllocator a;
  std::vector<std::int32_t> offs;
  for (int i = 0; i < 64; ++i) {
    const auto off = a.allocate(512);
    ASSERT_TRUE(off.has_value());
    offs.push_back(*off);
  }
  EXPECT_FALSE(a.allocate(512).has_value());
  EXPECT_EQ(a.allocated_bytes(), 32 * 1024);
  // All offsets distinct and granular.
  std::set<std::int32_t> uniq(offs.begin(), offs.end());
  EXPECT_EQ(uniq.size(), 64u);
  for (auto o : offs) EXPECT_EQ(o % 512, 0);
  for (auto o : offs) a.deallocate(o);
  EXPECT_EQ(a.allocated_bytes(), 0);
}

TEST(ShmemAllocator, OversizedRequestFails) {
  ShmemAllocator a;
  EXPECT_FALSE(a.allocate(64 * 1024).has_value());
}

TEST(ShmemAllocator, DeferredDeallocationSweep) {
  ShmemAllocator a;
  const auto x = a.allocate(16 * 1024);
  const auto y = a.allocate(16 * 1024);
  ASSERT_TRUE(x && y);
  EXPECT_FALSE(a.allocate(512).has_value());
  // Executor-warp side: mark; no space is reclaimed yet.
  a.mark_for_deallocation(*x);
  EXPECT_TRUE(a.has_deferred());
  EXPECT_FALSE(a.allocate(512).has_value());
  // Scheduler-warp side: sweep, then allocation succeeds.
  EXPECT_EQ(a.sweep_deferred(), 1);
  EXPECT_FALSE(a.has_deferred());
  EXPECT_TRUE(a.allocate(512).has_value());
}

// Property-style randomized exercise: allocations never overlap, never
// exceed the arena, and a full free cycle always restores the empty state.
class ShmemAllocatorRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShmemAllocatorRandomTest, NoOverlapAndFullRecovery) {
  ShmemAllocator a;
  SplitMix64 rng(GetParam());
  struct Live {
    std::int32_t offset;
    std::int32_t size;
  };
  std::vector<Live> live;
  for (int step = 0; step < 2000; ++step) {
    const bool do_alloc = live.empty() || (rng.next() % 100 < 60);
    if (do_alloc) {
      const std::int32_t req =
          static_cast<std::int32_t>(rng.next_in(1, 8 * 1024));
      const auto off = a.allocate(req);
      if (off.has_value()) {
        const std::int32_t size = a.block_size_for(req);
        // Check bounds and non-overlap with every live block.
        ASSERT_GE(*off, 0);
        ASSERT_LE(*off + size, a.arena_bytes());
        for (const Live& l : live) {
          const bool disjoint = *off + size <= l.offset || l.offset + l.size <= *off;
          ASSERT_TRUE(disjoint) << "overlap at step " << step;
        }
        live.push_back(Live{*off, size});
      } else {
        // Denial must be justified: free bytes below request size is the
        // weak check (fragmentation can justify denial too, so only check
        // the trivially-wrong case: empty allocator must never deny).
        ASSERT_FALSE(live.empty());
      }
    } else {
      const std::size_t pick = rng.next() % live.size();
      a.deallocate(live[pick].offset);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    if (step % 61 == 0) {
      ASSERT_TRUE(a.check_invariants()) << "buddy invariant broken at step "
                                        << step;
    }
  }
  ASSERT_TRUE(a.check_invariants());
  for (const Live& l : live) a.deallocate(l.offset);
  EXPECT_EQ(a.allocated_bytes(), 0);
  const auto whole = a.allocate(32 * 1024);
  EXPECT_TRUE(whole.has_value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShmemAllocatorRandomTest,
                         ::testing::Values(1, 2, 3, 42, 1234, 99999));

}  // namespace
}  // namespace pagoda::runtime
