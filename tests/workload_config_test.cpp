// Tests for workload configuration knobs: dynamic thread selection,
// blocks-per-task redistribution, input scaling, and the aggregate
// accounting methods the harness relies on.
#include <gtest/gtest.h>

#include "workloads/workload.h"

namespace pagoda::workloads {
namespace {

TEST(DynamicThreads, ProportionalWarpGranularClamped) {
  EXPECT_EQ(dynamic_thread_count(128, 1.0), 128);
  EXPECT_EQ(dynamic_thread_count(128, 0.5), 64);
  EXPECT_EQ(dynamic_thread_count(128, 0.01), 32);   // clamp low
  EXPECT_EQ(dynamic_thread_count(128, 10.0), 256);  // clamp high
  EXPECT_EQ(dynamic_thread_count(128, 0.7), 96);    // warp multiple
  EXPECT_EQ(dynamic_thread_count(100, 1.0), 128);   // rounds up to a warp
}

TEST(WorkloadConfig, DynamicThreadsVaryWithTaskSize) {
  auto wl = make_workload("3DES");
  WorkloadConfig cfg;
  cfg.num_tasks = 64;
  cfg.irregular_sizes = true;
  cfg.dynamic_threads = true;
  cfg.mode = gpu::ExecMode::Model;
  wl->generate(cfg);
  int min_t = 1 << 20;
  int max_t = 0;
  for (const TaskSpec& t : wl->tasks()) {
    EXPECT_EQ(t.params.threads_per_block % 32, 0);
    EXPECT_GE(t.params.threads_per_block, 32);
    EXPECT_LE(t.params.threads_per_block, 256);
    min_t = std::min(min_t, t.params.threads_per_block);
    max_t = std::max(max_t, t.params.threads_per_block);
  }
  EXPECT_LT(min_t, max_t) << "thread counts should track packet sizes";
}

TEST(WorkloadConfig, BlocksPerTaskRedistributesConstantWork) {
  // Total charges must not change when the same work is spread over more
  // blocks (Fig 8's axis).
  auto count_cycles = [](int blocks) {
    auto wl = make_workload("CONV");
    WorkloadConfig cfg;
    cfg.num_tasks = 1;
    cfg.threads_per_task = 256;
    cfg.blocks_per_task = blocks;
    cfg.mode = gpu::ExecMode::Model;
    wl->generate(cfg);
    const TaskSpec& spec = wl->tasks()[0];
    EXPECT_EQ(spec.params.num_blocks, blocks);
    double total = 0.0;
    const int warps = spec.params.warps_total();
    for (int w = 0; w < warps; ++w) {
      gpu::WarpCtx ctx;
      ctx.warp_in_task = w;
      ctx.warp_in_block = w % spec.params.warps_per_block();
      ctx.block_index = w / spec.params.warps_per_block();
      ctx.threads_per_block = spec.params.threads_per_block;
      ctx.num_blocks = spec.params.num_blocks;
      ctx.mode = gpu::ExecMode::Model;
      ctx.args = spec.params.args.data();
      gpu::KernelCoro coro = spec.params.fn(ctx);
      while (!coro.done()) {
        const auto seg = gpu::run_segment(coro, ctx);
        total += seg.cycles;
        if (!seg.at_barrier) break;
      }
    }
    return total;
  };
  const double one = count_cycles(1);
  const double four = count_cycles(4);
  EXPECT_NEAR(one, four, one * 0.05);
}

TEST(WorkloadConfig, IrregularSizesComposeWithMultiBlockTasks) {
  // Fig 8 x Fig 9: irregular per-task sizes must survive blocks_per_task
  // redistribution — every task keeps its own size while spanning the
  // requested block count.
  auto wl = make_workload("3DES");
  WorkloadConfig cfg;
  cfg.num_tasks = 48;
  cfg.irregular_sizes = true;
  cfg.blocks_per_task = 4;
  cfg.mode = gpu::ExecMode::Model;
  wl->generate(cfg);
  double min_ops = 1e300;
  double max_ops = 0.0;
  for (const TaskSpec& t : wl->tasks()) {
    EXPECT_EQ(t.params.num_blocks, 4);
    EXPECT_EQ(t.params.threads_per_block % 32, 0);
    min_ops = std::min(min_ops, t.cpu_ops);
    max_ops = std::max(max_ops, t.cpu_ops);
  }
  EXPECT_LT(min_ops, max_ops) << "irregular sizes must vary task weight";
}

TEST(WorkloadConfig, DynamicThreadsComposeWithMultiBlockTasks) {
  // Dynamic thread selection picks the per-BLOCK width; the block count
  // stays the configured blocks_per_task, so total threads vary with task
  // size while the grid shape is respected.
  auto wl = make_workload("3DES");
  WorkloadConfig cfg;
  cfg.num_tasks = 48;
  cfg.irregular_sizes = true;
  cfg.dynamic_threads = true;
  cfg.blocks_per_task = 2;
  cfg.mode = gpu::ExecMode::Model;
  wl->generate(cfg);
  int min_t = 1 << 20;
  int max_t = 0;
  for (const TaskSpec& t : wl->tasks()) {
    EXPECT_EQ(t.params.num_blocks, 2);
    EXPECT_EQ(t.params.threads_per_block % 32, 0);
    EXPECT_GE(t.params.threads_per_block, 32);
    EXPECT_LE(t.params.threads_per_block, 256);
    min_t = std::min(min_t, t.params.threads_per_block);
    max_t = std::max(max_t, t.params.threads_per_block);
  }
  EXPECT_LT(min_t, max_t) << "thread counts should track irregular sizes";
}

TEST(WorkloadConfig, InputScaleChangesTaskWeight) {
  auto weigh = [](int scale) {
    auto wl = make_workload("MM");
    WorkloadConfig cfg;
    cfg.num_tasks = 1;
    cfg.input_scale = scale;
    cfg.mode = gpu::ExecMode::Model;
    wl->generate(cfg);
    return wl->tasks()[0].cpu_ops;
  };
  // Matmul ops grow ~cubically with the matrix dimension.
  EXPECT_GT(weigh(128), 7.0 * weigh(64));
  EXPECT_LT(weigh(128), 9.0 * weigh(64));
}

TEST(WorkloadConfig, TotalsAggregateAcrossTasks) {
  auto wl = make_workload("CONV");
  WorkloadConfig cfg;
  cfg.num_tasks = 10;
  cfg.mode = gpu::ExecMode::Model;
  wl->generate(cfg);
  const auto tasks = wl->tasks();
  std::int64_t h2d = 0;
  std::int64_t d2h = 0;
  double ops = 0;
  for (const TaskSpec& t : tasks) {
    h2d += t.h2d_bytes;
    d2h += t.d2h_bytes;
    ops += t.cpu_ops;
  }
  EXPECT_EQ(wl->total_h2d_bytes(), h2d);
  EXPECT_EQ(wl->total_d2h_bytes(), d2h);
  EXPECT_DOUBLE_EQ(wl->total_cpu_ops(), ops);
  EXPECT_EQ(h2d, 10LL * 128 * 128 * 4);
}

}  // namespace
}  // namespace pagoda::workloads
