// Direct tests for sim::Task<T>: laziness, value propagation, nesting, and
// interaction with virtual-time awaits from a Process.
#include <gtest/gtest.h>

#include <vector>

#include "sim/process.h"
#include "sim/task.h"

namespace pagoda::sim {
namespace {

Task<int> make_value(int v, bool& started) {
  started = true;
  co_return v;
}

Task<int> add_delayed(Simulation& sim, int a, int b) {
  co_await sim.delay(microseconds(1));
  co_return a + b;
}

Task<> side_effect(int& target, int value) {
  target = value;
  co_return;
}

Task<int> nested(Simulation& sim) {
  const int x = co_await add_delayed(sim, 1, 2);
  const int y = co_await add_delayed(sim, x, 10);
  co_return y;
}

Process driver(Simulation& sim, std::vector<int>& results, bool& started) {
  // Laziness: creating the task does not run its body.
  Task<int> t = make_value(7, started);
  EXPECT_FALSE(started);
  results.push_back(co_await std::move(t));
  EXPECT_TRUE(started);

  results.push_back(co_await add_delayed(sim, 20, 22));
  results.push_back(co_await nested(sim));

  int target = 0;
  co_await side_effect(target, 99);
  results.push_back(target);
}

TEST(TaskCoro, LazyValuesNestingAndVoid) {
  Simulation sim;
  std::vector<int> results;
  bool started = false;
  sim.spawn(driver(sim, results, started));
  sim.run();
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0], 7);
  EXPECT_EQ(results[1], 42);
  EXPECT_EQ(results[2], 13);
  EXPECT_EQ(results[3], 99);
  // nested() awaited two 1us delays; add_delayed one more.
  EXPECT_EQ(sim.now(), microseconds(3));
}

Process chain_driver(Simulation& sim, int& total) {
  // A long sequential chain of awaited tasks must not blow the stack
  // (symmetric transfer) and must accumulate correctly.
  for (int i = 0; i < 10000; ++i) {
    total += co_await add_delayed(sim, 0, 1);
  }
}

TEST(TaskCoro, LongChainsAreStackSafe) {
  Simulation sim;
  int total = 0;
  sim.spawn(chain_driver(sim, total));
  sim.run();
  EXPECT_EQ(total, 10000);
  EXPECT_EQ(sim.now(), microseconds(10000));
}

}  // namespace
}  // namespace pagoda::sim
