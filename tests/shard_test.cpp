// Unit tests for the sharded simulation core: EventQueue id-reuse hardening,
// shard scoping/routing, cross-shard channels, and the parallel window
// coordinator's equivalence with the sequential driver.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/event_queue.h"
#include "sim/process.h"
#include "sim/simulation.h"
#include "sim/sync.h"

namespace pagoda::sim {
namespace {

// --- EventQueue cancel hardening ------------------------------------------

/// A cancelled id whose slot was since reused by a NEW event must not cancel
/// the new event: the generation stamped into the id has moved on. This is
/// the double-cancel-across-slab-reuse regression pinned by the explicit
/// generation check in EventQueue::cancel.
TEST(EventCancelSlabReuse, StaleIdDoesNotCancelReusedSlot) {
  EventQueue q;
  int fired = 0;
  const EventId a = q.schedule(10, [&] { fired += 1; });
  ASSERT_TRUE(q.cancel(a));
  // The freed slot is recycled (LIFO free list): b lands in a's slab slot
  // with a bumped generation.
  const EventId b = q.schedule(20, [&] { fired += 10; });
  EXPECT_FALSE(q.cancel(a)) << "stale id cancelled a reused slot";
  EXPECT_FALSE(q.cancel(a)) << "double-cancel of a stale id succeeded";
  while (!q.empty()) q.pop().run();
  EXPECT_EQ(fired, 10) << "the reused slot's event must still fire";
  (void)b;
}

TEST(EventCancelSlabReuse, CancelAfterFireIsRejected) {
  EventQueue q;
  const EventId a = q.schedule(5, [] {});
  q.pop().run();
  EXPECT_FALSE(q.cancel(a));
  // And the slot reuse after a natural pop is likewise protected.
  const EventId b = q.schedule(7, [] {});
  EXPECT_FALSE(q.cancel(a));
  EXPECT_TRUE(q.cancel(b));
}

TEST(EventCancelSlabReuse, ZeroAndForeignIdsAreRejected) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(0));
  EXPECT_FALSE(q.cancel(static_cast<EventId>(1) << 32));  // slot never used
}

// --- shard configuration and routing --------------------------------------

TEST(Shards, ConfigureGrowsNodeShards) {
  Simulation sim;
  EXPECT_EQ(sim.num_shards(), 1);
  sim.configure_shards(4);
  EXPECT_EQ(sim.num_shards(), 5);
}

TEST(Shards, DisabledShardingIgnoresConfigure) {
  Simulation sim;
  sim.set_sharding_enabled(false);
  sim.configure_shards(4);
  EXPECT_EQ(sim.num_shards(), 1);
  // Scopes degrade to the host shard instead of tripping checks.
  Simulation::ShardScope scope(sim, 3);
  EXPECT_EQ(sim.current_shard(), kHostShard);
}

TEST(Shards, ScopeRoutesSchedulingAndRestores) {
  Simulation sim;
  sim.configure_shards(2);
  {
    Simulation::ShardScope scope(sim, 2);
    EXPECT_EQ(sim.current_shard(), 2);
    {
      Simulation::ShardScope inner(sim, 1);
      EXPECT_EQ(sim.current_shard(), 1);
    }
    EXPECT_EQ(sim.current_shard(), 2);
  }
  EXPECT_EQ(sim.current_shard(), kHostShard);
}

/// Sequential-sharded pop order must equal the schedule order at equal
/// timestamps regardless of which shard each event lives on — the global
/// sequence counter, not shard topology, decides ties. This is the invariant
/// that keeps the sharded build byte-identical to the single-queue build.
TEST(Shards, SequentialMergePreservesGlobalScheduleOrder) {
  Simulation sim;
  sim.configure_shards(3);
  std::vector<int> order;
  for (int i = 0; i < 12; ++i) {
    Simulation::ShardScope scope(
        sim, static_cast<ShardId>(i % 4));  // host, 1, 2, 3, host, ...
    sim.at(100, [&order, i] { order.push_back(i); });
  }
  sim.run();
  ASSERT_EQ(order.size(), 12u);
  for (int i = 0; i < 12; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Shards, CancelWorksAcrossShardsSequentially) {
  Simulation sim;
  sim.configure_shards(2);
  bool fired = false;
  EventId id = 0;
  {
    Simulation::ShardScope scope(sim, 2);
    id = sim.at(50, [&] { fired = true; });
  }
  // Host context cancelling a node-shard event: allowed while sequential.
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Shards, SpawnRecordsHomeShardAndJoinCrossesShards) {
  Simulation sim;
  sim.configure_shards(1);
  std::vector<std::string> log;
  Joinable worker;
  {
    Simulation::ShardScope scope(sim, 1);
    worker = sim.spawn([](Simulation& s, std::vector<std::string>& out)
                           -> Process {
      std::string entry = "worker@";
      entry += std::to_string(s.current_shard());
      out.push_back(std::move(entry));
      co_await s.delay(30);
      out.push_back("worker-done");
    }(sim, log));
  }
  sim.spawn([](Simulation& s, Joinable j,
               std::vector<std::string>& out) -> Process {
    co_await j.join();
    std::string entry = "joined@";
    entry += std::to_string(s.current_shard());
    out.push_back(std::move(entry));
  }(sim, worker, log));
  sim.run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], "worker@1");
  EXPECT_EQ(log[1], "worker-done");
  EXPECT_EQ(log[2], "joined@0");
}

TEST(Shards, InvokeOnIsImmediateInSequentialContext) {
  Simulation sim;
  sim.configure_shards(2);
  bool ran = false;
  sim.invoke_on(kHostShard, [&] { ran = true; });
  EXPECT_TRUE(ran) << "sequential invoke_on must be a direct call";
}

TEST(Shards, RequireSerialDisablesParallelWindows) {
  Simulation sim;
  sim.configure_shards(2);
  sim.set_worker_threads(4);
  sim.require_serial("test pin");
  ASSERT_STREQ(sim.serial_reason(), "test pin");
  int fired = 0;
  for (ShardId s = 0; s < 3; ++s) {
    Simulation::ShardScope scope(sim, s);
    sim.at(10, [&] { fired++; });
  }
  sim.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.shard_stats().windows, 0u)
      << "require_serial must keep the coordinator out of window mode";
}

// --- parallel windows -------------------------------------------------------

/// One ping-pong chain per node shard plus a host-side observer; the
/// N-thread window run must produce exactly the event interleaving the
/// sequential run does for everything the host can see.
struct ParallelHarness {
  static std::vector<std::string> run(int threads, int shards, int rounds) {
    Simulation sim;
    sim.configure_shards(shards);
    if (threads > 1) sim.set_worker_threads(threads);
    std::vector<std::string> log;
    for (int n = 0; n < shards; ++n) {
      Simulation::ShardScope scope(sim, static_cast<ShardId>(1 + n));
      sim.spawn(node_loop(sim, n, rounds, log));
    }
    sim.run();
    return log;
  }

  static Process node_loop(Simulation& sim, int node, int rounds,
                           std::vector<std::string>& log) {
    for (int r = 0; r < rounds; ++r) {
      co_await sim.delay(100 + node * 7);  // staggered, overlapping chains
      // Cross-shard notification to the host shard: the typed channel the
      // dispatcher's completion path uses.
      sim.invoke_on(kHostShard, [&log, node, r, &sim] {
        std::string entry = "n";
        entry += std::to_string(node);
        entry += ":r";
        entry += std::to_string(r);
        entry += "@";
        entry += std::to_string(sim.now());
        log.push_back(std::move(entry));
      });
    }
  }
};

TEST(ParallelWindows, HostVisibleOrderMatchesSequential) {
  const std::vector<std::string> seq = ParallelHarness::run(1, 4, 16);
  const std::vector<std::string> par = ParallelHarness::run(3, 4, 16);
  EXPECT_EQ(seq, par);
}

TEST(ParallelWindows, RunUntilStopsAtCapInBothModes) {
  for (const int threads : {1, 3}) {
    Simulation sim;
    sim.configure_shards(2);
    if (threads > 1) sim.set_worker_threads(threads);
    int fired = 0;
    for (ShardId s = 1; s <= 2; ++s) {
      Simulation::ShardScope scope(sim, s);
      sim.at(100, [&] { fired++; });
      sim.at(300, [&] { fired++; });
    }
    sim.run_until(200);
    EXPECT_EQ(fired, 2) << threads << " threads";
    EXPECT_EQ(sim.now(), 200);
    sim.run_until(400);
    EXPECT_EQ(fired, 4) << threads << " threads";
  }
}

TEST(ParallelWindows, StatsRecordWindowActivity) {
  Simulation sim;
  sim.configure_shards(4);
  sim.set_worker_threads(3);
  for (ShardId s = 1; s <= 4; ++s) {
    Simulation::ShardScope scope(sim, s);
    sim.spawn([](Simulation& sm) -> Process {
      for (int i = 0; i < 50; ++i) co_await sm.delay(10);
    }(sim));
  }
  sim.run();
  const ShardStats& st = sim.shard_stats();
  EXPECT_GT(st.windows, 0u);
  EXPECT_GT(st.window_events, 0u);
}

}  // namespace
}  // namespace pagoda::sim
