// Unit tests for common utilities: statistics and RNG determinism.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"

namespace pagoda {
namespace {

TEST(Stats, GeometricMean) {
  const std::array<double, 3> v{1.0, 8.0, 8.0};
  EXPECT_NEAR(geometric_mean(v), 4.0, 1e-12);
  EXPECT_EQ(geometric_mean({}), 0.0);
  const std::array<double, 1> one{5.7};
  EXPECT_NEAR(geometric_mean(one), 5.7, 1e-12);
}

TEST(Stats, ArithmeticMeanAndStdDev) {
  const std::array<double, 4> v{2.0, 4.0, 4.0, 6.0};
  EXPECT_NEAR(arithmetic_mean(v), 4.0, 1e-12);
  EXPECT_NEAR(std_deviation(v), std::sqrt(2.0), 1e-12);
  EXPECT_EQ(std_deviation(std::array<double, 1>{3.0}), 0.0);
}

TEST(Stats, Percentile) {
  const std::array<double, 5> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_NEAR(percentile(v, 0), 1.0, 1e-12);
  EXPECT_NEAR(percentile(v, 50), 3.0, 1e-12);
  EXPECT_NEAR(percentile(v, 100), 5.0, 1e-12);
  EXPECT_NEAR(percentile(v, 25), 2.0, 1e-12);
  EXPECT_NEAR(percentile(v, 12.5), 1.5, 1e-12);
}

TEST(Stats, RunningStats) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.mean(), 0.0);
  rs.add(2.0);
  rs.add(6.0);
  rs.add(4.0);
  EXPECT_EQ(rs.count(), 3u);
  EXPECT_NEAR(rs.mean(), 4.0, 1e-12);
  EXPECT_EQ(rs.min(), 2.0);
  EXPECT_EQ(rs.max(), 6.0);
  EXPECT_NEAR(rs.sum(), 12.0, 1e-12);
}

TEST(Stats, RunningStatsVarianceMatchesBatchFormula) {
  // Welford's online variance must agree with the two-pass population
  // formula used by std_deviation().
  const std::array<double, 6> v{2.0, 4.0, 4.0, 4.0, 5.0, 7.0};
  RunningStats rs;
  for (const double x : v) rs.add(x);
  const double sd = std_deviation(v);
  EXPECT_NEAR(rs.variance(), sd * sd, 1e-12);
  EXPECT_NEAR(rs.stddev(), sd, 1e-12);
}

TEST(Stats, RunningStatsVarianceDegenerateCases) {
  RunningStats rs;
  EXPECT_EQ(rs.variance(), 0.0);  // empty
  EXPECT_EQ(rs.stddev(), 0.0);
  rs.add(3.0);
  EXPECT_EQ(rs.variance(), 0.0);  // single sample
  rs.add(3.0);
  rs.add(3.0);
  EXPECT_NEAR(rs.variance(), 0.0, 1e-12);  // constant stream
}

TEST(Stats, RunningStatsMergeEqualsCombinedStream) {
  // Chan et al. parallel merge: splitting a stream across accumulators and
  // merging must match feeding the whole stream into one accumulator.
  SplitMix64 g(1234);
  std::vector<double> all;
  RunningStats a;
  RunningStats b;
  RunningStats combined;
  for (int i = 0; i < 100; ++i) {
    const double x = g.next_double() * 50.0 - 10.0;
    all.push_back(x);
    (i < 37 ? a : b).add(x);
    combined.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), combined.variance(), 1e-9);
  EXPECT_NEAR(a.stddev(), combined.stddev(), 1e-9);
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  const double sd = std_deviation(all);
  EXPECT_NEAR(a.stddev(), sd, 1e-9);
}

TEST(Stats, RunningStatsMergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(5.0);
  RunningStats empty;
  RunningStats a_copy = a;
  a_copy.merge(empty);  // merging an empty accumulator is a no-op
  EXPECT_EQ(a_copy.count(), a.count());
  EXPECT_NEAR(a_copy.mean(), a.mean(), 1e-12);
  EXPECT_NEAR(a_copy.variance(), a.variance(), 1e-12);
  EXPECT_EQ(a_copy.min(), a.min());
  EXPECT_EQ(a_copy.max(), a.max());

  RunningStats into_empty;
  into_empty.merge(a);  // merging INTO an empty one adopts the other side
  EXPECT_EQ(into_empty.count(), a.count());
  EXPECT_NEAR(into_empty.mean(), a.mean(), 1e-12);
  EXPECT_NEAR(into_empty.variance(), a.variance(), 1e-12);
  EXPECT_EQ(into_empty.min(), a.min());
  EXPECT_EQ(into_empty.max(), a.max());
}

TEST(Rng, DeterministicAcrossInstances) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsProduceDistinctStreams) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextInCoversRangeInclusive) {
  SplitMix64 g(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t x = g.next_in(3, 6);
    EXPECT_GE(x, 3);
    EXPECT_LE(x, 6);
    saw_lo |= (x == 3);
    saw_hi |= (x == 6);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  SplitMix64 g(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = g.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, HashIndexIsStable) {
  // Pin a couple of values so accidental algorithm changes are caught: the
  // workload generators depend on these streams for reproducibility.
  EXPECT_EQ(hash_index(1, 0), hash_index(1, 0));
  EXPECT_NE(hash_index(1, 0), hash_index(1, 1));
  EXPECT_NE(hash_index(1, 0), hash_index(2, 0));
}

}  // namespace
}  // namespace pagoda
