// Golden-file pin on the full observability snapshot of fixed-seed runs.
//
// The metrics JSON is a byte-stable digest of a run's entire virtual-time
// behavior (occupancy series, PCIe byte counters, latency histograms, ...).
// Pinning it to a checked-in golden file guards two contracts at once:
//  * determinism — the same seed must reproduce the same bytes, run after
//    run and build after build (Release and sanitizer passes both run this
//    test);
//  * refactor safety — engine/scheduler reworks (the engine::Session port,
//    event-queue pooling) must not shift a single event, or these bytes
//    change.
//
// Regenerate intentionally with:  PAGODA_UPDATE_GOLDEN=1 ./golden_metrics_test
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "harness/calibration.h"
#include "harness/experiment.h"
#include "obs/collector.h"

namespace pagoda {
namespace {

constexpr std::uint64_t kSeed = 0x9A60DAULL;

std::string golden_path(const std::string& name) {
  return std::string(PAGODA_GOLDEN_DIR) + "/" + name + ".json";
}

std::string run_metrics_json(const std::string& runtime,
                             baselines::RunConfig rcfg) {
  workloads::WorkloadConfig wcfg;
  wcfg.num_tasks = 256;
  wcfg.threads_per_task = 128;
  wcfg.seed = kSeed;

  obs::CollectorConfig ccfg;
  ccfg.sample_period = sim::microseconds(20.0);
  obs::Collector collector(ccfg);

  rcfg.mode = gpu::ExecMode::Model;
  rcfg.collect_latencies = true;
  rcfg.collector = &collector;

  const harness::Measurement m =
      harness::run_experiment("MM", runtime, wcfg, rcfg);
  std::ostringstream out;
  m.metrics.write_json(out);
  return out.str();
}

void check_against_golden(const std::string& name, const std::string& json) {
  const std::string path = golden_path(name);
  if (std::getenv("PAGODA_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << json;
    GTEST_SKIP() << "updated " << path;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (regenerate with PAGODA_UPDATE_GOLDEN=1)";
  std::stringstream want;
  want << in.rdbuf();
  EXPECT_EQ(want.str(), json) << "metrics diverged from golden " << path;
}

TEST(GoldenMetrics, PagodaMM) {
  check_against_golden("metrics_mm_pagoda",
                       run_metrics_json("Pagoda", harness::paper_platform()));
}

TEST(GoldenMetrics, HyperQMM) {
  check_against_golden("metrics_mm_hyperq",
                       run_metrics_json("HyperQ", harness::paper_platform()));
}

TEST(GoldenMetrics, GeMTCMM) {
  check_against_golden("metrics_mm_gemtc",
                       run_metrics_json("GeMTC", harness::paper_platform()));
}

TEST(GoldenMetrics, ClusterMM) {
  baselines::RunConfig rcfg = harness::paper_platform();
  rcfg.cluster.specs = {gpu::GpuSpec::titan_x(), gpu::GpuSpec::tesla_k40()};
  rcfg.cluster.policy = "least-loaded";
  rcfg.cluster.arrival = "poisson:150000";
  rcfg.cluster.slo = sim::microseconds(5000.0);
  rcfg.cluster.seed = kSeed;
  check_against_golden("metrics_mm_cluster",
                       run_metrics_json("Cluster", rcfg));
}

/// The Fig-11 ablation shares the Pagoda driver; pin it too so the port of
/// the batching path is covered.
TEST(GoldenMetrics, PagodaBatchingMM) {
  check_against_golden(
      "metrics_mm_pagoda_batching",
      run_metrics_json("PagodaBatching", harness::paper_platform()));
}

/// Three back-to-back runs in one process must produce identical bytes:
/// nothing in a run may leak state into the next (static counters, pooled
/// allocators, RNG).
TEST(GoldenMetrics, RepeatsAreByteIdentical) {
  const std::string a = run_metrics_json("Pagoda", harness::paper_platform());
  const std::string b = run_metrics_json("Pagoda", harness::paper_platform());
  const std::string c = run_metrics_json("Pagoda", harness::paper_platform());
  EXPECT_EQ(a, b);
  EXPECT_EQ(b, c);
}

}  // namespace
}  // namespace pagoda
