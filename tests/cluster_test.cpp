// Cluster serving layer tests: placement determinism, SLO/drop accounting
// under constructed overload, exactly-once backpressure release, and
// heterogeneous-spec clusters (parameterized so nothing hard-codes Titan X).
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/dispatcher.h"
#include "cluster/placement.h"
#include "cluster/traffic.h"
#include "obs/metrics.h"
#include "sched/policy.h"
#include "sim/process.h"

namespace pagoda::cluster {
namespace {

gpu::GpuSpec spec_by_name(const std::string& name) {
  if (name == "k40") return gpu::GpuSpec::tesla_k40();
  return gpu::GpuSpec::titan_x();
}

struct RunSpec {
  std::vector<std::string> nodes = {"titan_x", "titan_x"};
  std::string policy = "round-robin";
  ArrivalConfig arrival{};
  RequestProfile profile{};
  int requests = 64;
  std::uint64_t seed = 0xC0FFEE;
  int queue_limit = 0;
  /// >0: shrink every node to this many SMMs (tiny TaskTables, so overload
  /// tests can exhaust the per-node slots with few requests).
  int num_smms = 0;
  /// QoS scheduling policy, applied end-to-end (dispatcher + nodes).
  sched::PolicyConfig sched{};
  /// Arm per-class sched.* metric export even under fifo.
  bool qos = false;
  /// Cycle request classes interactive/standard/batch by index so every
  /// class carries traffic.
  bool cycle_classes = false;
};

struct RunOutput {
  Dispatcher::Stats stats;
  std::array<Dispatcher::ClassStats, sched::kNumClasses> cls{};
  std::vector<int> placements;
  std::vector<std::int64_t> per_node_completed;
  std::string metrics_json;
  bool done = false;
  sim::Time end_time = 0;
};

sim::Process feed(sim::Simulation& sim, Dispatcher& disp, const RunSpec& rs) {
  ArrivalSequence seq(rs.arrival, rs.seed);
  for (int i = 0; i < rs.requests; ++i) {
    const sim::Duration gap = seq.next_gap();
    if (gap > 0) co_await sim.delay(gap);
    Request r = synth_request(rs.profile, rs.seed, i);
    if (rs.cycle_classes) r.cls = static_cast<sched::Class>(i % sched::kNumClasses);
    disp.offer(std::move(r));
  }
  disp.close();
}

sim::Process settle(Dispatcher& disp, RunOutput& out, sim::Simulation& sim) {
  co_await disp.drain();
  out.end_time = sim.now();
  out.done = true;
}

RunOutput run_cluster(const RunSpec& rs) {
  sim::Simulation sim;
  std::vector<NodeConfig> nodes;
  for (const std::string& name : rs.nodes) {
    NodeConfig nc;
    nc.spec = spec_by_name(name);
    if (rs.num_smms > 0) nc.spec.num_smms = rs.num_smms;
    nc.pagoda.sched = rs.sched;
    nodes.push_back(nc);
  }
  Cluster fleet(sim, nodes);
  DispatcherConfig dc;
  dc.queue_limit = rs.queue_limit;
  dc.sched = rs.sched;
  dc.qos = rs.qos;
  Dispatcher disp(fleet, make_policy(rs.policy), dc);
  fleet.start();

  RunOutput out;
  sim.spawn(feed(sim, disp, rs));
  sim.spawn(settle(disp, out, sim));
  sim.run_until(sim::seconds(60.0));

  out.stats = disp.stats();
  for (int c = 0; c < sched::kNumClasses; ++c) {
    out.cls[static_cast<std::size_t>(c)] =
        disp.class_stats(static_cast<sched::Class>(c));
  }
  out.placements = disp.placements();
  for (int i = 0; i < fleet.size(); ++i) {
    out.per_node_completed.push_back(fleet.node(i).completed());
  }
  obs::MetricsRegistry m;
  disp.export_metrics(m);
  std::ostringstream os;
  m.write_json(os);
  out.metrics_json = os.str();
  fleet.shutdown();
  return out;
}

RunSpec poisson_spec(const std::string& policy) {
  RunSpec rs;
  rs.policy = policy;
  rs.arrival.kind = ArrivalKind::Poisson;
  rs.arrival.rate_per_sec = 150.0e3;
  rs.profile.slo = sim::milliseconds(5.0);
  rs.profile.num_keys = 16;  // give data-affinity something to key on
  return rs;
}

// --- determinism --------------------------------------------------------------

TEST(ClusterDeterminism, SameSeedSamePlacementsAndMetrics) {
  // The determinism contract of the whole layer: a (config, seed) pair
  // replays the identical placement sequence and a byte-identical metrics
  // snapshot, for every policy.
  for (const std::string_view policy : all_policy_names()) {
    const RunSpec rs = poisson_spec(std::string(policy));
    const RunOutput a = run_cluster(rs);
    const RunOutput b = run_cluster(rs);
    ASSERT_TRUE(a.done) << policy;
    ASSERT_TRUE(b.done) << policy;
    EXPECT_EQ(a.placements, b.placements) << policy;
    EXPECT_EQ(a.metrics_json, b.metrics_json) << policy;
    EXPECT_EQ(a.end_time, b.end_time) << policy;
  }
}

TEST(ClusterDeterminism, SeedsChangeTheArrivalTrace) {
  RunSpec rs = poisson_spec("round-robin");
  const RunOutput a = run_cluster(rs);
  rs.seed += 1;
  const RunOutput b = run_cluster(rs);
  ASSERT_TRUE(a.done && b.done);
  EXPECT_NE(a.end_time, b.end_time);
}

// --- placement policies -------------------------------------------------------

TEST(ClusterPlacement, RoundRobinRotates) {
  RunSpec rs = poisson_spec("round-robin");
  rs.requests = 10;
  const RunOutput out = run_cluster(rs);
  ASSERT_TRUE(out.done);
  ASSERT_EQ(out.placements.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(out.placements[static_cast<std::size_t>(i)], i % 2);
}

TEST(ClusterPlacement, DataAffinitySkipsRepeatCopies) {
  // 16 keys over 64 requests: after each key's first copy the node holds it
  // resident, so the affinity policy must skip most H2D input copies.
  const RunOutput affinity = run_cluster(poisson_spec("data-affinity"));
  const RunOutput rr = run_cluster(poisson_spec("round-robin"));
  ASSERT_TRUE(affinity.done && rr.done);
  EXPECT_GT(affinity.stats.affinity_hits, 0);
  EXPECT_LT(affinity.stats.h2d_bytes_copied, rr.stats.h2d_bytes_copied);
}

// --- SLO accounting and admission control -------------------------------------

TEST(ClusterSlo, OverloadProducesDropsAndViolations) {
  // Constructed overload: a tiny backlog bound with a far-too-fast arrival
  // stream. Drops must be deterministic, counted, and charged as SLO misses.
  RunSpec rs = poisson_spec("least-outstanding");
  rs.arrival.rate_per_sec = 5.0e6;
  rs.profile.compute_cycles = 200000.0;
  rs.profile.stall_cycles = 400000.0;
  rs.requests = 256;
  rs.queue_limit = 8;
  rs.num_smms = 1;  // 64 TaskTable slots per node, so overload really queues
  const RunOutput out = run_cluster(rs);
  ASSERT_TRUE(out.done);
  EXPECT_GT(out.stats.dropped, 0);
  EXPECT_EQ(out.stats.offered, out.stats.admitted + out.stats.dropped);
  EXPECT_EQ(out.stats.completed, out.stats.admitted);
  // Every drop carries the request's SLO, so it must be charged as a miss.
  EXPECT_GE(out.stats.slo_violations, out.stats.dropped);
}

TEST(ClusterSlo, ImpossibleDeadlineViolatesEverywhere) {
  RunSpec rs = poisson_spec("round-robin");
  rs.profile.slo = sim::microseconds(1.0);  // below any attainable latency
  const RunOutput out = run_cluster(rs);
  ASSERT_TRUE(out.done);
  EXPECT_EQ(out.stats.slo_violations, out.stats.offered);
}

TEST(ClusterBackpressure, SlotsReleasedExactlyOncePerAdmitted) {
  // The per-node slot semaphore must see exactly one release per admitted
  // request — double release would overcommit TaskTables, a missing one
  // would deadlock later runs.
  for (const std::string_view policy : all_policy_names()) {
    RunSpec rs = poisson_spec(std::string(policy));
    rs.requests = 128;
    const RunOutput out = run_cluster(rs);
    ASSERT_TRUE(out.done) << policy;
    EXPECT_EQ(out.stats.slot_releases, out.stats.admitted) << policy;
    EXPECT_EQ(out.stats.completed, out.stats.admitted) << policy;
  }
}

// --- heterogeneous clusters (cross_arch idiom) --------------------------------

class ClusterArch : public ::testing::TestWithParam<const char*> {};

TEST_P(ClusterArch, MixedFleetServesEverything) {
  RunSpec rs = poisson_spec("least-loaded");
  const std::string param = GetParam();
  if (param == "titan_x") {
    rs.nodes = {"titan_x", "titan_x"};
  } else if (param == "k40") {
    rs.nodes = {"k40", "k40"};
  } else {
    rs.nodes = {"titan_x", "k40"};
  }
  rs.requests = 96;
  const RunOutput out = run_cluster(rs);
  ASSERT_TRUE(out.done);
  EXPECT_EQ(out.stats.completed, out.stats.offered);
  // Load-aware placement must use the whole fleet, whatever its makeup.
  for (const std::int64_t c : out.per_node_completed) EXPECT_GT(c, 0);
}

INSTANTIATE_TEST_SUITE_P(Fleets, ClusterArch,
                         ::testing::Values("titan_x", "k40", "mixed"));

// --- QoS scheduling -----------------------------------------------------------

constexpr std::array<sched::PolicyKind, 4> kSchedKinds = {
    sched::PolicyKind::kFifo, sched::PolicyKind::kPriority,
    sched::PolicyKind::kEdf, sched::PolicyKind::kWfq};

TEST(ClusterQos, PerClassLedgerBalancesUnderEveryPolicy) {
  // The per-class exactly-once invariant: every admitted request of every
  // class releases its slot exactly once, as a completion or a shed —
  // whatever order the policy serves them in.
  for (const sched::PolicyKind kind : kSchedKinds) {
    RunSpec rs = poisson_spec("round-robin");
    rs.sched.kind = kind;
    rs.qos = true;
    rs.cycle_classes = true;
    rs.requests = 120;
    const RunOutput out = run_cluster(rs);
    ASSERT_TRUE(out.done) << sched::to_string(kind);
    std::int64_t admitted = 0;
    for (const Dispatcher::ClassStats& cs : out.cls) {
      EXPECT_EQ(cs.offered, cs.admitted + cs.dropped) << sched::to_string(kind);
      EXPECT_EQ(cs.slot_releases, cs.completed + cs.shed)
          << sched::to_string(kind);
      EXPECT_EQ(cs.slot_releases, cs.admitted) << sched::to_string(kind);
      EXPECT_GT(cs.offered, 0) << sched::to_string(kind);
      admitted += cs.admitted;
    }
    EXPECT_EQ(admitted, out.stats.admitted) << sched::to_string(kind);
  }
}

TEST(ClusterQos, LedgerHoldsUnderOverloadWithDropsAndEvictions) {
  // Overload with a tight backlog bound: fifo drops at the door; non-fifo
  // policies may additionally displace parked batch work (evictions). The
  // ledger must balance either way, and evictions are a subset of sheds.
  for (const sched::PolicyKind kind : kSchedKinds) {
    RunSpec rs = poisson_spec("least-outstanding");
    rs.sched.kind = kind;
    rs.qos = true;
    rs.cycle_classes = true;
    rs.arrival.rate_per_sec = 5.0e6;
    rs.profile.compute_cycles = 200000.0;
    rs.profile.stall_cycles = 400000.0;
    rs.requests = 256;
    rs.queue_limit = 8;
    rs.num_smms = 1;
    const RunOutput out = run_cluster(rs);
    ASSERT_TRUE(out.done) << sched::to_string(kind);
    EXPECT_GT(out.stats.dropped, 0) << sched::to_string(kind);
    for (const Dispatcher::ClassStats& cs : out.cls) {
      EXPECT_EQ(cs.offered, cs.admitted + cs.dropped) << sched::to_string(kind);
      EXPECT_EQ(cs.slot_releases, cs.completed + cs.shed)
          << sched::to_string(kind);
      EXPECT_EQ(cs.slot_releases, cs.admitted) << sched::to_string(kind);
      EXPECT_LE(cs.evicted, cs.shed) << sched::to_string(kind);
    }
    if (kind == sched::PolicyKind::kFifo) {
      EXPECT_EQ(out.stats.evicted, 0);
    }
  }
}

TEST(ClusterQos, SchedMetricsExportedOnlyWhenArmed) {
  RunSpec rs = poisson_spec("round-robin");
  rs.requests = 32;
  const RunOutput plain = run_cluster(rs);
  ASSERT_TRUE(plain.done);
  EXPECT_EQ(plain.metrics_json.find("sched."), std::string::npos)
      << "fifo without --qos must not grow the metrics snapshot";

  rs.qos = true;
  rs.cycle_classes = true;
  const RunOutput armed = run_cluster(rs);
  ASSERT_TRUE(armed.done);
  for (const char* key :
       {"sched.interactive.completed", "sched.standard.completed",
        "sched.batch.completed", "sched.interactive.latency.p99_us",
        "sched.evicted"}) {
    EXPECT_NE(armed.metrics_json.find(key), std::string::npos) << key;
  }
}

TEST(ClusterQos, NonFifoPoliciesAreDeterministic) {
  for (const sched::PolicyKind kind : kSchedKinds) {
    RunSpec rs = poisson_spec("least-loaded");
    rs.sched.kind = kind;
    rs.qos = true;
    rs.cycle_classes = true;
    const RunOutput a = run_cluster(rs);
    const RunOutput b = run_cluster(rs);
    ASSERT_TRUE(a.done && b.done) << sched::to_string(kind);
    EXPECT_EQ(a.placements, b.placements) << sched::to_string(kind);
    EXPECT_EQ(a.metrics_json, b.metrics_json) << sched::to_string(kind);
    EXPECT_EQ(a.end_time, b.end_time) << sched::to_string(kind);
  }
}

// --- data-affinity cache eviction order ---------------------------------------

TEST(ClusterCache, LruEvictsLeastRecentlyUsedNotOldestInsert) {
  sim::Simulation sim;
  NodeConfig nc;
  nc.cache_keys = 3;
  Cluster fleet(sim, {nc});
  GpuNode& n = fleet.node(0);
  n.cache_insert(1);
  n.cache_insert(2);
  n.cache_insert(3);
  // Touch 1: under FIFO eviction it would still die first; under LRU it is
  // now the most recently used and key 2 is the victim.
  n.cache_touch(1);
  n.cache_insert(4);
  EXPECT_TRUE(n.cache_contains(1));
  EXPECT_FALSE(n.cache_contains(2));
  EXPECT_TRUE(n.cache_contains(3));
  EXPECT_TRUE(n.cache_contains(4));
  // Reinserting a resident key promotes it instead of duplicating it.
  n.cache_insert(3);
  n.cache_insert(5);  // LRU order is now [1, 4, 3]: evicts 1
  EXPECT_FALSE(n.cache_contains(1));
  EXPECT_TRUE(n.cache_contains(4));
  // cache_contains is a pure read: probing 4 must not save it. Next victim
  // is still 4.
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(n.cache_contains(4));
  n.cache_insert(6);
  EXPECT_FALSE(n.cache_contains(4));
  EXPECT_TRUE(n.cache_contains(3) && n.cache_contains(5) &&
              n.cache_contains(6));
  n.cache_clear();
  for (const std::uint64_t k : {3ull, 5ull, 6ull}) {
    EXPECT_FALSE(n.cache_contains(k));
  }
}

// --- traffic parsing ----------------------------------------------------------

TEST(ClusterTraffic, ArrivalSpecParsing) {
  EXPECT_TRUE(ArrivalConfig::parse("closed").has_value());
  const auto poisson = ArrivalConfig::parse("poisson:2500");
  ASSERT_TRUE(poisson.has_value());
  EXPECT_EQ(poisson->kind, ArrivalKind::Poisson);
  EXPECT_DOUBLE_EQ(poisson->rate_per_sec, 2500.0);
  const auto bursty = ArrivalConfig::parse("bursty:1e5:12");
  ASSERT_TRUE(bursty.has_value());
  EXPECT_EQ(bursty->kind, ArrivalKind::Bursty);
  EXPECT_DOUBLE_EQ(bursty->burst_factor, 12.0);

  EXPECT_FALSE(ArrivalConfig::parse("poisson").has_value());
  EXPECT_FALSE(ArrivalConfig::parse("poisson:").has_value());
  EXPECT_FALSE(ArrivalConfig::parse("poisson:-5").has_value());
  EXPECT_FALSE(ArrivalConfig::parse("poisson:10:3").has_value());
  EXPECT_FALSE(ArrivalConfig::parse("bursty:10:1").has_value());
  EXPECT_FALSE(ArrivalConfig::parse("bursty:10x").has_value());
  EXPECT_FALSE(ArrivalConfig::parse("sawtooth:10").has_value());
}

TEST(ClusterTraffic, PoissonGapsMatchTheConfiguredRate) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::Poisson;
  cfg.rate_per_sec = 1.0e5;
  ArrivalSequence seq(cfg, 99);
  double total_s = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) total_s += sim::to_seconds(seq.next_gap());
  const double mean_gap_us = total_s / kN * 1e6;
  EXPECT_NEAR(mean_gap_us, 10.0, 0.5);  // 1/100k s = 10 us
}

TEST(ClusterTraffic, BurstyKeepsTheLongRunMeanRate) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::Bursty;
  cfg.rate_per_sec = 1.0e5;
  cfg.burst_factor = 8.0;
  ArrivalSequence seq(cfg, 7);
  double total_s = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) total_s += sim::to_seconds(seq.next_gap());
  const double mean_gap_us = total_s / kN * 1e6;
  EXPECT_NEAR(mean_gap_us, 10.0, 1.0);
}

TEST(ClusterTraffic, UnknownPolicyNameReturnsNull) {
  EXPECT_EQ(make_policy("bogus"), nullptr);
  for (const std::string_view name : all_policy_names()) {
    const auto p = make_policy(name);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->name(), name);
  }
}

}  // namespace
}  // namespace pagoda::cluster
