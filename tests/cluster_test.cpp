// Cluster serving layer tests: placement determinism, SLO/drop accounting
// under constructed overload, exactly-once backpressure release, and
// heterogeneous-spec clusters (parameterized so nothing hard-codes Titan X).
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/dispatcher.h"
#include "cluster/placement.h"
#include "cluster/traffic.h"
#include "obs/metrics.h"
#include "sim/process.h"

namespace pagoda::cluster {
namespace {

gpu::GpuSpec spec_by_name(const std::string& name) {
  if (name == "k40") return gpu::GpuSpec::tesla_k40();
  return gpu::GpuSpec::titan_x();
}

struct RunSpec {
  std::vector<std::string> nodes = {"titan_x", "titan_x"};
  std::string policy = "round-robin";
  ArrivalConfig arrival{};
  RequestProfile profile{};
  int requests = 64;
  std::uint64_t seed = 0xC0FFEE;
  int queue_limit = 0;
  /// >0: shrink every node to this many SMMs (tiny TaskTables, so overload
  /// tests can exhaust the per-node slots with few requests).
  int num_smms = 0;
};

struct RunOutput {
  Dispatcher::Stats stats;
  std::vector<int> placements;
  std::vector<std::int64_t> per_node_completed;
  std::string metrics_json;
  bool done = false;
  sim::Time end_time = 0;
};

sim::Process feed(sim::Simulation& sim, Dispatcher& disp, const RunSpec& rs) {
  ArrivalSequence seq(rs.arrival, rs.seed);
  for (int i = 0; i < rs.requests; ++i) {
    const sim::Duration gap = seq.next_gap();
    if (gap > 0) co_await sim.delay(gap);
    disp.offer(synth_request(rs.profile, rs.seed, i));
  }
  disp.close();
}

sim::Process settle(Dispatcher& disp, RunOutput& out, sim::Simulation& sim) {
  co_await disp.drain();
  out.end_time = sim.now();
  out.done = true;
}

RunOutput run_cluster(const RunSpec& rs) {
  sim::Simulation sim;
  std::vector<NodeConfig> nodes;
  for (const std::string& name : rs.nodes) {
    NodeConfig nc;
    nc.spec = spec_by_name(name);
    if (rs.num_smms > 0) nc.spec.num_smms = rs.num_smms;
    nodes.push_back(nc);
  }
  Cluster fleet(sim, nodes);
  DispatcherConfig dc;
  dc.queue_limit = rs.queue_limit;
  Dispatcher disp(fleet, make_policy(rs.policy), dc);
  fleet.start();

  RunOutput out;
  sim.spawn(feed(sim, disp, rs));
  sim.spawn(settle(disp, out, sim));
  sim.run_until(sim::seconds(60.0));

  out.stats = disp.stats();
  out.placements = disp.placements();
  for (int i = 0; i < fleet.size(); ++i) {
    out.per_node_completed.push_back(fleet.node(i).completed());
  }
  obs::MetricsRegistry m;
  disp.export_metrics(m);
  std::ostringstream os;
  m.write_json(os);
  out.metrics_json = os.str();
  fleet.shutdown();
  return out;
}

RunSpec poisson_spec(const std::string& policy) {
  RunSpec rs;
  rs.policy = policy;
  rs.arrival.kind = ArrivalKind::Poisson;
  rs.arrival.rate_per_sec = 150.0e3;
  rs.profile.slo = sim::milliseconds(5.0);
  rs.profile.num_keys = 16;  // give data-affinity something to key on
  return rs;
}

// --- determinism --------------------------------------------------------------

TEST(ClusterDeterminism, SameSeedSamePlacementsAndMetrics) {
  // The determinism contract of the whole layer: a (config, seed) pair
  // replays the identical placement sequence and a byte-identical metrics
  // snapshot, for every policy.
  for (const std::string_view policy : all_policy_names()) {
    const RunSpec rs = poisson_spec(std::string(policy));
    const RunOutput a = run_cluster(rs);
    const RunOutput b = run_cluster(rs);
    ASSERT_TRUE(a.done) << policy;
    ASSERT_TRUE(b.done) << policy;
    EXPECT_EQ(a.placements, b.placements) << policy;
    EXPECT_EQ(a.metrics_json, b.metrics_json) << policy;
    EXPECT_EQ(a.end_time, b.end_time) << policy;
  }
}

TEST(ClusterDeterminism, SeedsChangeTheArrivalTrace) {
  RunSpec rs = poisson_spec("round-robin");
  const RunOutput a = run_cluster(rs);
  rs.seed += 1;
  const RunOutput b = run_cluster(rs);
  ASSERT_TRUE(a.done && b.done);
  EXPECT_NE(a.end_time, b.end_time);
}

// --- placement policies -------------------------------------------------------

TEST(ClusterPlacement, RoundRobinRotates) {
  RunSpec rs = poisson_spec("round-robin");
  rs.requests = 10;
  const RunOutput out = run_cluster(rs);
  ASSERT_TRUE(out.done);
  ASSERT_EQ(out.placements.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(out.placements[static_cast<std::size_t>(i)], i % 2);
}

TEST(ClusterPlacement, DataAffinitySkipsRepeatCopies) {
  // 16 keys over 64 requests: after each key's first copy the node holds it
  // resident, so the affinity policy must skip most H2D input copies.
  const RunOutput affinity = run_cluster(poisson_spec("data-affinity"));
  const RunOutput rr = run_cluster(poisson_spec("round-robin"));
  ASSERT_TRUE(affinity.done && rr.done);
  EXPECT_GT(affinity.stats.affinity_hits, 0);
  EXPECT_LT(affinity.stats.h2d_bytes_copied, rr.stats.h2d_bytes_copied);
}

// --- SLO accounting and admission control -------------------------------------

TEST(ClusterSlo, OverloadProducesDropsAndViolations) {
  // Constructed overload: a tiny backlog bound with a far-too-fast arrival
  // stream. Drops must be deterministic, counted, and charged as SLO misses.
  RunSpec rs = poisson_spec("least-outstanding");
  rs.arrival.rate_per_sec = 5.0e6;
  rs.profile.compute_cycles = 200000.0;
  rs.profile.stall_cycles = 400000.0;
  rs.requests = 256;
  rs.queue_limit = 8;
  rs.num_smms = 1;  // 64 TaskTable slots per node, so overload really queues
  const RunOutput out = run_cluster(rs);
  ASSERT_TRUE(out.done);
  EXPECT_GT(out.stats.dropped, 0);
  EXPECT_EQ(out.stats.offered, out.stats.admitted + out.stats.dropped);
  EXPECT_EQ(out.stats.completed, out.stats.admitted);
  // Every drop carries the request's SLO, so it must be charged as a miss.
  EXPECT_GE(out.stats.slo_violations, out.stats.dropped);
}

TEST(ClusterSlo, ImpossibleDeadlineViolatesEverywhere) {
  RunSpec rs = poisson_spec("round-robin");
  rs.profile.slo = sim::microseconds(1.0);  // below any attainable latency
  const RunOutput out = run_cluster(rs);
  ASSERT_TRUE(out.done);
  EXPECT_EQ(out.stats.slo_violations, out.stats.offered);
}

TEST(ClusterBackpressure, SlotsReleasedExactlyOncePerAdmitted) {
  // The per-node slot semaphore must see exactly one release per admitted
  // request — double release would overcommit TaskTables, a missing one
  // would deadlock later runs.
  for (const std::string_view policy : all_policy_names()) {
    RunSpec rs = poisson_spec(std::string(policy));
    rs.requests = 128;
    const RunOutput out = run_cluster(rs);
    ASSERT_TRUE(out.done) << policy;
    EXPECT_EQ(out.stats.slot_releases, out.stats.admitted) << policy;
    EXPECT_EQ(out.stats.completed, out.stats.admitted) << policy;
  }
}

// --- heterogeneous clusters (cross_arch idiom) --------------------------------

class ClusterArch : public ::testing::TestWithParam<const char*> {};

TEST_P(ClusterArch, MixedFleetServesEverything) {
  RunSpec rs = poisson_spec("least-loaded");
  const std::string param = GetParam();
  if (param == "titan_x") {
    rs.nodes = {"titan_x", "titan_x"};
  } else if (param == "k40") {
    rs.nodes = {"k40", "k40"};
  } else {
    rs.nodes = {"titan_x", "k40"};
  }
  rs.requests = 96;
  const RunOutput out = run_cluster(rs);
  ASSERT_TRUE(out.done);
  EXPECT_EQ(out.stats.completed, out.stats.offered);
  // Load-aware placement must use the whole fleet, whatever its makeup.
  for (const std::int64_t c : out.per_node_completed) EXPECT_GT(c, 0);
}

INSTANTIATE_TEST_SUITE_P(Fleets, ClusterArch,
                         ::testing::Values("titan_x", "k40", "mixed"));

// --- traffic parsing ----------------------------------------------------------

TEST(ClusterTraffic, ArrivalSpecParsing) {
  EXPECT_TRUE(ArrivalConfig::parse("closed").has_value());
  const auto poisson = ArrivalConfig::parse("poisson:2500");
  ASSERT_TRUE(poisson.has_value());
  EXPECT_EQ(poisson->kind, ArrivalKind::Poisson);
  EXPECT_DOUBLE_EQ(poisson->rate_per_sec, 2500.0);
  const auto bursty = ArrivalConfig::parse("bursty:1e5:12");
  ASSERT_TRUE(bursty.has_value());
  EXPECT_EQ(bursty->kind, ArrivalKind::Bursty);
  EXPECT_DOUBLE_EQ(bursty->burst_factor, 12.0);

  EXPECT_FALSE(ArrivalConfig::parse("poisson").has_value());
  EXPECT_FALSE(ArrivalConfig::parse("poisson:").has_value());
  EXPECT_FALSE(ArrivalConfig::parse("poisson:-5").has_value());
  EXPECT_FALSE(ArrivalConfig::parse("poisson:10:3").has_value());
  EXPECT_FALSE(ArrivalConfig::parse("bursty:10:1").has_value());
  EXPECT_FALSE(ArrivalConfig::parse("bursty:10x").has_value());
  EXPECT_FALSE(ArrivalConfig::parse("sawtooth:10").has_value());
}

TEST(ClusterTraffic, PoissonGapsMatchTheConfiguredRate) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::Poisson;
  cfg.rate_per_sec = 1.0e5;
  ArrivalSequence seq(cfg, 99);
  double total_s = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) total_s += sim::to_seconds(seq.next_gap());
  const double mean_gap_us = total_s / kN * 1e6;
  EXPECT_NEAR(mean_gap_us, 10.0, 0.5);  // 1/100k s = 10 us
}

TEST(ClusterTraffic, BurstyKeepsTheLongRunMeanRate) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::Bursty;
  cfg.rate_per_sec = 1.0e5;
  cfg.burst_factor = 8.0;
  ArrivalSequence seq(cfg, 7);
  double total_s = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) total_s += sim::to_seconds(seq.next_gap());
  const double mean_gap_us = total_s / kN * 1e6;
  EXPECT_NEAR(mean_gap_us, 10.0, 1.0);
}

TEST(ClusterTraffic, UnknownPolicyNameReturnsNull) {
  EXPECT_EQ(make_policy("bogus"), nullptr);
  for (const std::string_view name : all_policy_names()) {
    const auto p = make_policy(name);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->name(), name);
  }
}

}  // namespace
}  // namespace pagoda::cluster
