// Example: a heterogeneous serving fleet with two tenants.
//
// One Dispatcher fronts a mixed cluster — a Maxwell Titan X and a Kepler
// Tesla K40, each with its own PCIe link and Pagoda runtime — using the
// data-affinity placement policy. Two tenants share it:
//
//   * "interactive": latency-sensitive lookups, Poisson arrivals, a tight
//     2 ms deadline, and keyed input data (requests for the same shard hit
//     the node already holding it, skipping the H2D copy);
//   * "batch": wider analytics requests in ON/OFF bursts with a loose
//     50 ms deadline and unkeyed (always-copied) inputs.
//
// The example self-verifies the serving invariants and exits nonzero on any
// violation: every offered request completes, no deadline is missed at this
// load, the affinity cache absorbs repeat-shard copies, both devices do
// work, and backpressure slots balance exactly.
//
//   $ ./fleet_serving [requests_per_tenant]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/dispatcher.h"
#include "cluster/placement.h"
#include "cluster/traffic.h"
#include "common/stats.h"
#include "engine/session.h"
#include "sim/process.h"

using namespace pagoda;

namespace {

struct Tenant {
  const char* name;
  cluster::ArrivalConfig arrival;
  cluster::RequestProfile profile;
  std::uint64_t seed;
};

sim::Process tenant_source(sim::Simulation& sim, cluster::Dispatcher& disp,
                           const Tenant& t, int requests, int* open_sources) {
  cluster::ArrivalSequence seq(t.arrival, t.seed);
  for (int i = 0; i < requests; ++i) {
    const sim::Duration gap = seq.next_gap();
    if (gap > 0) co_await sim.delay(gap);
    disp.offer(cluster::synth_request(t.profile, t.seed, i));
  }
  *open_sources -= 1;
  if (*open_sources == 0) disp.close();
}

sim::Process drainer(cluster::Dispatcher& disp, bool* done) {
  co_await disp.drain();
  *done = true;
}

}  // namespace

int main(int argc, char** argv) {
  const int requests = argc > 1 ? std::atoi(argv[1]) : 512;
  if (requests <= 0) {
    std::fprintf(stderr, "usage: fleet_serving [requests_per_tenant]\n");
    return 2;
  }

  // Clock-only Session: the fleet's GpuNodes each bring up their own device
  // sub-session on this shared Simulation.
  engine::SessionConfig scfg;
  scfg.device = false;
  engine::Session session(scfg);
  sim::Simulation& sim = session.sim();
  cluster::NodeConfig titan;
  titan.pcie.bandwidth_bytes_per_sec = 12.0e9;
  titan.pcie.latency = sim::microseconds(2.0);
  cluster::NodeConfig k40 = titan;
  k40.spec = gpu::GpuSpec::tesla_k40();
  cluster::Cluster fleet(sim, {titan, k40});
  cluster::Dispatcher disp(fleet, cluster::make_policy("data-affinity"), {});
  fleet.start();

  Tenant interactive;
  interactive.name = "interactive";
  interactive.arrival.kind = cluster::ArrivalKind::Poisson;
  interactive.arrival.rate_per_sec = 100.0e3;
  interactive.profile.threads_per_task = 64;
  interactive.profile.h2d_bytes = 8192;
  interactive.profile.num_keys = 32;  // shards; repeats hit the node cache
  interactive.profile.slo = sim::milliseconds(2.0);
  interactive.seed = 0x1E7A;

  Tenant batch;
  batch.name = "batch";
  batch.arrival.kind = cluster::ArrivalKind::Bursty;
  batch.arrival.rate_per_sec = 40.0e3;
  batch.arrival.burst_factor = 4.0;
  batch.profile.threads_per_task = 256;
  batch.profile.compute_cycles = 24000.0;
  batch.profile.stall_cycles = 48000.0;
  batch.profile.h2d_bytes = 65536;
  batch.profile.d2h_bytes = 16384;
  batch.profile.slo = sim::milliseconds(50.0);
  batch.seed = 0xBA7C;

  int open_sources = 2;
  bool done = false;
  for (const Tenant* t : {&interactive, &batch}) {
    sim.spawn(tenant_source(sim, disp, *t, requests, &open_sources));
  }
  sim.spawn(drainer(disp, &done));
  sim.run_until(sim::seconds(60.0));

  const cluster::Dispatcher::Stats& st = disp.stats();
  const std::span<const double> lat = disp.latencies_us();
  std::printf("fleet_serving: %d requests x 2 tenants on titan_x + k40\n",
              requests);
  std::printf("  completed %lld/%lld, slo violations %lld, affinity hits "
              "%lld\n",
              static_cast<long long>(st.completed),
              static_cast<long long>(st.offered),
              static_cast<long long>(st.slo_violations),
              static_cast<long long>(st.affinity_hits));
  std::printf("  latency p50 %.1f us, p99 %.1f us; per-node completed:",
              percentile(lat, 50), percentile(lat, 99));
  for (int i = 0; i < fleet.size(); ++i) {
    std::printf(" %lld", static_cast<long long>(fleet.node(i).completed()));
  }
  std::printf("\n");

  bool ok = true;
  const auto expect = [&ok](bool cond, const char* what) {
    if (!cond) {
      std::fprintf(stderr, "FAIL: %s\n", what);
      ok = false;
    }
  };
  expect(done, "dispatcher drained before the simulation horizon");
  expect(st.offered == 2LL * requests, "every request was offered");
  expect(st.completed == st.offered, "every offered request completed");
  expect(st.dropped == 0, "no drops at this load");
  expect(st.slo_violations == 0, "both tenants met their deadlines");
  expect(st.affinity_hits > 0, "shard cache absorbed repeat copies");
  expect(st.slot_releases == st.admitted, "backpressure slots balanced");
  for (int i = 0; i < fleet.size(); ++i) {
    expect(fleet.node(i).completed() > 0, "both devices served requests");
  }
  fleet.shutdown();
  std::printf("fleet_serving: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
