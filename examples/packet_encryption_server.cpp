// Example: a latency-sensitive network encryption "router" (the paper's
// 3DES scenario, Table 4). Packets arrive as a Poisson stream; each packet
// is Triple-DES-encrypted by one narrow Pagoda task spawned the moment the
// packet arrives — no batching. Reports the per-packet latency distribution
// and verifies every ciphertext by decrypting it.
//
//   $ ./packet_encryption_server [num_packets] [offered_load_gbps]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "engine/session.h"
#include "sim/process.h"
#include "workloads/des_core.h"

using namespace pagoda;
using runtime::Runtime;
using runtime::TaskHandle;
using runtime::TaskParams;

namespace {

struct Packet {
  std::vector<std::uint64_t> plain;
  std::vector<std::uint64_t> cipher;
  sim::Time arrived = 0;
  sim::Time encrypted = 0;
};

struct EncryptArgs {
  const std::uint64_t* in;
  std::uint64_t* out;
  const workloads::TripleDesKey* key;
  std::int32_t blocks;
};

gpu::KernelCoro encrypt_kernel(gpu::WarpCtx& ctx) {
  const auto& a = ctx.args_as<EncryptArgs>();
  const int total_threads = ctx.threads_per_block * ctx.num_blocks;
  int mine = 0;
  for (int b = ctx.tid(0); b < a.blocks; b += total_threads) ++mine;
  ctx.charge(mine * 704.0);
  ctx.charge_stall(mine * 1400.0);
  if (ctx.compute()) {
    for (int lane = 0; lane < 32; ++lane) {
      for (int b = ctx.tid(lane); b < a.blocks; b += total_threads) {
        a.out[b] = workloads::triple_des_encrypt_block(a.in[b], *a.key);
      }
    }
  }
  co_return;
}

sim::Process router(sim::Simulation& sim, Runtime& rt,
                    std::vector<Packet>& packets,
                    const workloads::TripleDesKey& key, double load_gbps) {
  SplitMix64 rng(2026);
  for (Packet& pkt : packets) {
    // Poisson arrivals at the offered load.
    const double bytes = static_cast<double>(pkt.plain.size()) * 8.0;
    const double mean_gap_s = bytes / (load_gbps * 125e6);
    const double gap = -mean_gap_s * std::log(1.0 - rng.next_double());
    co_await sim.delay(sim::seconds(gap));

    pkt.arrived = sim.now();
    TaskParams params;
    params.fn = encrypt_kernel;
    params.threads_per_block = 128;
    params.set_args(EncryptArgs{pkt.plain.data(), pkt.cipher.data(), &key,
                                static_cast<std::int32_t>(pkt.plain.size())});
    const TaskHandle h = co_await rt.task_spawn(params);
    co_await rt.wait(h);  // the "nested task" of Fig 1a
    pkt.encrypted = sim.now();
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int num_packets = argc > 1 ? std::atoi(argv[1]) : 400;
  const double load_gbps = argc > 2 ? std::atof(argv[2]) : 2.0;

  std::printf("Pagoda packet-encryption server: %d packets (2-16 KB), "
              "~%.1f Gbps offered load, Triple-DES (EDE3)\n\n",
              num_packets, load_gbps);

  engine::SessionConfig cfg;
  cfg.pagoda_runtime = true;
  cfg.pagoda.mode = gpu::ExecMode::Compute;
  engine::Session session(cfg);
  session.start();
  sim::Simulation& sim = session.sim();
  Runtime& rt = session.rt();

  const auto key = workloads::triple_des_key(0x0123456789ABCDEFULL,
                                             0x23456789ABCDEF01ULL,
                                             0x456789ABCDEF0123ULL);
  SplitMix64 rng(7);
  std::vector<Packet> packets(static_cast<std::size_t>(num_packets));
  for (Packet& p : packets) {
    const auto blocks = static_cast<std::size_t>(rng.next_in(256, 2048));
    p.plain.resize(blocks);
    p.cipher.resize(blocks);
    for (auto& b : p.plain) b = rng.next();
  }

  sim.spawn(router(sim, rt, packets, key, load_gbps));
  session.run_until(sim::seconds(60.0));
  session.shutdown();

  // Verify and report latencies.
  bool ok = true;
  std::vector<double> latencies_us;
  std::int64_t total_bytes = 0;
  for (const Packet& p : packets) {
    if (p.encrypted == 0) {
      ok = false;
      continue;
    }
    latencies_us.push_back(sim::to_microseconds(p.encrypted - p.arrived));
    total_bytes += static_cast<std::int64_t>(p.plain.size()) * 8;
    for (std::size_t b = 0; b < p.plain.size(); ++b) {
      if (workloads::triple_des_decrypt_block(p.cipher[b], key) !=
          p.plain[b]) {
        ok = false;
        break;
      }
    }
  }
  sim::Time last = 0;
  for (const Packet& p : packets) last = std::max(last, p.encrypted);
  std::printf("encrypted %.1f MB in %.2f ms of virtual time\n",
              static_cast<double>(total_bytes) / 1e6,
              sim::to_milliseconds(last));
  std::printf("per-packet latency: mean %.1f us   p50 %.1f us   p99 %.1f us\n",
              arithmetic_mean(latencies_us), percentile(latencies_us, 50),
              percentile(latencies_us, 99));
  std::printf("ciphertext verification (decrypt round-trip): %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
