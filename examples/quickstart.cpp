// Quickstart: the whole Pagoda API surface in one small program.
//
// Builds the simulated Titan X, starts the Pagoda runtime (MasterKernel),
// spawns narrow SAXPY-with-reduction tasks through taskSpawn, synchronizes
// with wait / check / waitAll, and verifies the results computed by the
// kernels (which use getTid, syncBlock and the shared-memory pointer).
//
//   $ ./quickstart [num_tasks]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "engine/session.h"
#include "sim/process.h"

using namespace pagoda;
using runtime::Runtime;
using runtime::TaskHandle;
using runtime::TaskParams;

namespace {

// ---------------------------------------------------------------------------
// A task kernel: y = a*x + y over `n` elements, then a block-wide reduction
// of y into *sum using shared memory and syncBlock(). Written exactly like a
// Pagoda __device__ kernel: per-thread work via getTid (ctx.tid), barriers
// via syncBlock, shared memory via the provided pointer.
// ---------------------------------------------------------------------------
struct SaxpyArgs {
  const float* x;
  float* y;
  float a;
  int n;
  double* sum;  // one per task
};

gpu::KernelCoro saxpy_reduce_kernel(gpu::WarpCtx& ctx) {
  const auto& args = ctx.args_as<SaxpyArgs>();
  const int total_threads = ctx.threads_per_block * ctx.num_blocks;
  auto partials = ctx.shared_as<double>();  // getSMPtr()

  // Phase 1: strided SAXPY, accumulating a per-warp partial sum.
  double local = 0.0;
  if (ctx.compute()) {
    for (int lane = 0; lane < 32; ++lane) {
      for (int i = ctx.tid(lane); i < args.n; i += total_threads) {
        args.y[i] += args.a * args.x[i];
        local += args.y[i];
      }
    }
    partials[static_cast<std::size_t>(ctx.warp_in_block)] = local;
  }
  ctx.charge(static_cast<double>(args.n) / total_threads * 6.0);
  ctx.charge_stall(static_cast<double>(args.n) / total_threads * 12.0);

  co_await ctx.sync_block();  // syncBlock()

  // Phase 2: warp 0 folds the partials.
  if (ctx.warp_in_block == 0) {
    if (ctx.compute()) {
      double total = 0.0;
      const int warps = (ctx.threads_per_block + 31) / 32;
      for (int w = 0; w < warps; ++w) {
        total += partials[static_cast<std::size_t>(w)];
      }
      *args.sum = total;
    }
    ctx.charge(8.0);
  }
  co_return;
}

// ---------------------------------------------------------------------------
// Host code, mirroring the paper's Fig 1a: spawn tasks as they "arrive",
// check/wait on individual tasks, waitAll at the end.
// ---------------------------------------------------------------------------
sim::Process host_main(sim::Simulation& sim, Runtime& rt, int num_tasks,
                       int n_per_task, bool& ok) {
  std::vector<float> x(static_cast<std::size_t>(num_tasks) * n_per_task);
  std::vector<float> y(x.size());
  std::vector<double> sums(static_cast<std::size_t>(num_tasks), -1.0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(i % 100) * 0.25f;
    y[i] = 1.0f;
  }

  std::vector<TaskHandle> handles;
  handles.reserve(static_cast<std::size_t>(num_tasks));
  for (int t = 0; t < num_tasks; ++t) {
    TaskParams params;
    params.fn = saxpy_reduce_kernel;
    params.threads_per_block = 128;
    params.num_blocks = 1;
    params.needs_sync = true;                      // we call syncBlock()
    params.shared_mem_bytes = 4 * sizeof(double);  // one partial per warp
    params.set_args(SaxpyArgs{x.data() + t * n_per_task,
                              y.data() + t * n_per_task, 2.0f, n_per_task,
                              &sums[static_cast<std::size_t>(t)]});
    const TaskHandle h = co_await rt.task_spawn(params);
    handles.push_back(h);
  }
  std::printf("[%8.1f us] spawned %d tasks (%lld TaskTable entry copies)\n",
              sim::to_microseconds(sim.now()), num_tasks,
              static_cast<long long>(rt.stats().entry_copies));

  // Wait on the first task specifically (cudaEventSynchronize analogue).
  co_await rt.wait(handles.front());
  std::printf("[%8.1f us] task 0 finished; check(task0)=%s\n",
              sim::to_microseconds(sim.now()),
              rt.check(handles.front()) ? "done" : "pending");

  // Then drain everything (cudaDeviceSynchronize analogue).
  co_await rt.wait_all();
  std::printf("[%8.1f us] all tasks finished (GPU scheduled %lld, "
              "dispatched %lld warps)\n",
              sim::to_microseconds(sim.now()),
              static_cast<long long>(rt.master_kernel().tasks_scheduled()),
              static_cast<long long>(rt.master_kernel().warps_dispatched()));

  // Verify on the host.
  ok = true;
  for (int t = 0; t < num_tasks && ok; ++t) {
    double expected = 0.0;
    for (int i = 0; i < n_per_task; ++i) {
      const auto idx = static_cast<std::size_t>(t * n_per_task + i);
      expected += 1.0 + 2.0 * x[idx];
      const float want = 1.0f + 2.0f * x[idx];
      if (y[idx] != want) ok = false;
    }
    const double got = sums[static_cast<std::size_t>(t)];
    if (std::abs(got - expected) > 1e-6 * (1.0 + std::abs(expected))) {
      ok = false;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int num_tasks = argc > 1 ? std::atoi(argv[1]) : 256;
  std::printf("Pagoda quickstart: %d narrow tasks (128 threads, "
              "shared-memory reduction) on the simulated Titan X\n\n",
              num_tasks);

  engine::SessionConfig cfg;
  cfg.pagoda_runtime = true;
  cfg.pagoda.mode = gpu::ExecMode::Compute;  // real math, verified below
  engine::Session session(cfg);
  session.start();

  bool ok = false;
  session.sim().spawn(
      host_main(session.sim(), session.rt(), num_tasks, /*n_per_task=*/512,
                ok));
  session.run_until(sim::seconds(10.0));
  session.shutdown();

  std::printf("\nverification: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
