// Example: an online surveillance pipeline (the paper's DCT scenario,
// Table 4): multiple cameras stream small frames; every frame is smoothed
// with a convolution task and then compressed with an 8x8 DCT task. The
// second stage is spawned only when the first finishes (per-frame task
// dependency expressed with wait()), and every camera runs concurrently —
// exactly the mixed task/data parallelism Pagoda targets.
//
//   $ ./camera_pipeline [cameras] [frames_per_camera]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "engine/session.h"
#include "sim/process.h"

using namespace pagoda;
using runtime::Runtime;
using runtime::TaskHandle;
using runtime::TaskParams;

namespace {

constexpr int kSide = 64;  // 64x64 frames
constexpr int kPixels = kSide * kSide;

struct BlurArgs {
  const float* in;
  float* out;
};

gpu::KernelCoro blur_kernel(gpu::WarpCtx& ctx) {
  const auto& a = ctx.args_as<BlurArgs>();
  const int total_threads = ctx.threads_per_block * ctx.num_blocks;
  int mine = 0;
  for (int i = ctx.tid(0); i < kPixels; i += total_threads) ++mine;
  ctx.charge(mine * 20.0);
  ctx.charge_stall(mine * 40.0);
  if (ctx.compute()) {
    for (int lane = 0; lane < 32; ++lane) {
      for (int i = ctx.tid(lane); i < kPixels; i += total_threads) {
        const int x = i % kSide;
        const int y = i / kSide;
        float acc = 0.0f;
        int n = 0;
        for (int dy = -1; dy <= 1; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            const int sx = x + dx;
            const int sy = y + dy;
            if (sx < 0 || sy < 0 || sx >= kSide || sy >= kSide) continue;
            acc += a.in[sy * kSide + sx];
            ++n;
          }
        }
        a.out[i] = acc / static_cast<float>(n);
      }
    }
  }
  co_return;
}

// Per-8x8-block "energy compaction" stand-in for the DCT stage: block mean
// removed, sum of squares recorded (verifiable with a closed form).
struct CompressArgs {
  const float* in;
  float* energy;  // (kSide/8)^2 entries
};

gpu::KernelCoro compress_kernel(gpu::WarpCtx& ctx) {
  const auto& a = ctx.args_as<CompressArgs>();
  const int blocks = (kSide / 8) * (kSide / 8);
  const int total_threads = ctx.threads_per_block * ctx.num_blocks;
  int mine = 0;
  for (int b = ctx.tid(0); b < blocks; b += total_threads) ++mine;
  ctx.charge(mine * 160.0);
  ctx.charge_stall(mine * 320.0);
  if (ctx.compute()) {
    for (int lane = 0; lane < 32; ++lane) {
      for (int b = ctx.tid(lane); b < blocks; b += total_threads) {
        const int bx = (b % (kSide / 8)) * 8;
        const int by = (b / (kSide / 8)) * 8;
        float mean = 0.0f;
        for (int y = 0; y < 8; ++y) {
          for (int x = 0; x < 8; ++x) mean += a.in[(by + y) * kSide + bx + x];
        }
        mean /= 64.0f;
        float energy = 0.0f;
        for (int y = 0; y < 8; ++y) {
          for (int x = 0; x < 8; ++x) {
            const float v = a.in[(by + y) * kSide + bx + x] - mean;
            energy += v * v;
          }
        }
        a.energy[b] = energy;
      }
    }
  }
  co_return;
}

struct CameraState {
  std::vector<float> frame;
  std::vector<float> blurred;
  std::vector<float> energy;
  int frames_done = 0;
  std::vector<double> frame_latency_us;
};

sim::Process camera(sim::Simulation& sim, Runtime& rt, CameraState& cam,
                    int frames, std::uint64_t seed) {
  SplitMix64 rng(seed);
  for (int f = 0; f < frames; ++f) {
    // ~30 fps with jitter.
    co_await sim.delay(sim::microseconds(50.0 + 20.0 * rng.next_double()));
    const sim::Time start = sim.now();
    for (auto& px : cam.frame) px = static_cast<float>(rng.next_double());

    TaskParams blur;
    blur.fn = blur_kernel;
    blur.threads_per_block = 128;
    blur.set_args(BlurArgs{cam.frame.data(), cam.blurred.data()});
    const TaskHandle h1 = co_await rt.task_spawn(blur);
    co_await rt.wait(h1);  // stage dependency

    TaskParams compress;
    compress.fn = compress_kernel;
    compress.threads_per_block = 64;
    compress.set_args(CompressArgs{cam.blurred.data(), cam.energy.data()});
    const TaskHandle h2 = co_await rt.task_spawn(compress);
    co_await rt.wait(h2);

    cam.frames_done += 1;
    cam.frame_latency_us.push_back(sim::to_microseconds(sim.now() - start));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int cameras = argc > 1 ? std::atoi(argv[1]) : 16;
  const int frames = argc > 2 ? std::atoi(argv[2]) : 20;
  std::printf("Pagoda camera pipeline: %d cameras x %d frames "
              "(blur task -> compress task per frame)\n\n",
              cameras, frames);

  engine::SessionConfig cfg;
  cfg.pagoda_runtime = true;
  cfg.pagoda.mode = gpu::ExecMode::Compute;
  engine::Session session(cfg);
  session.start();

  std::vector<CameraState> cams(static_cast<std::size_t>(cameras));
  for (auto& c : cams) {
    c.frame.assign(kPixels, 0.0f);
    c.blurred.assign(kPixels, 0.0f);
    c.energy.assign((kSide / 8) * (kSide / 8), 0.0f);
  }
  for (int c = 0; c < cameras; ++c) {
    session.sim().spawn(camera(session.sim(), session.rt(),
                               cams[static_cast<std::size_t>(c)], frames,
                               1000 + static_cast<std::uint64_t>(c)));
  }
  session.run_until(sim::seconds(30.0));
  session.shutdown();

  bool ok = true;
  std::vector<double> all_latencies;
  for (const auto& c : cams) {
    if (c.frames_done != frames) ok = false;
    all_latencies.insert(all_latencies.end(), c.frame_latency_us.begin(),
                         c.frame_latency_us.end());
    // Spot-check: energies are finite and non-negative.
    for (const float e : c.energy) {
      if (!(e >= 0.0f) || !std::isfinite(e)) ok = false;
    }
  }
  std::printf("processed %d frames (all cameras done)\n", cameras * frames);
  std::printf("per-frame pipeline latency: mean %.1f us  p99 %.1f us\n",
              arithmetic_mean(all_latencies), percentile(all_latencies, 99));
  std::printf("pipeline check: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
