// Example: a multi-programmed node (the paper's MPE scenario, Table 4).
// Four independent "applications" share one Pagoda runtime, each spawning
// its own kind of narrow task asynchronously: Mandelbrot tiles (irregular
// compute), FIR filtering (synchronizing), tiny matrix multiplies (shared
// memory) and Triple-DES packets (irregular sizes). Pagoda interleaves all
// of them at warp granularity on one GPU.
//
//   $ ./multiprogram [tasks_per_app]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/rng.h"
#include "engine/session.h"
#include "sim/process.h"
#include "workloads/des_core.h"

using namespace pagoda;
using runtime::Runtime;
using runtime::TaskParams;

namespace {

// --- app 1: Mandelbrot tile -------------------------------------------------
struct TileArgs {
  std::int32_t* out;  // 32x32 escape counts
  double cx, cy, span;
};

gpu::KernelCoro tile_kernel(gpu::WarpCtx& ctx) {
  const auto& a = ctx.args_as<TileArgs>();
  const int total_threads = ctx.threads_per_block * ctx.num_blocks;
  ctx.charge(1024.0 / total_threads * 32 * 50.0);
  ctx.charge_stall(1024.0 / total_threads * 32 * 100.0);
  if (ctx.compute()) {
    for (int lane = 0; lane < 32; ++lane) {
      for (int px = ctx.tid(lane); px < 1024; px += total_threads) {
        const double x0 = a.cx + a.span * ((px % 32) / 32.0 - 0.5);
        const double y0 = a.cy + a.span * ((px / 32) / 32.0 - 0.5);
        double zx = 0, zy = 0;
        int it = 0;
        while (it < 256 && zx * zx + zy * zy <= 4.0) {
          const double t = zx * zx - zy * zy + x0;
          zy = 2 * zx * zy + y0;
          zx = t;
          ++it;
        }
        a.out[px] = it;
      }
    }
  }
  co_return;
}

// --- app 2: FIR filter with a block barrier ----------------------------------
struct FirArgs {
  const float* in;   // 512 samples
  float* out;
};

gpu::KernelCoro fir_kernel(gpu::WarpCtx& ctx) {
  const auto& a = ctx.args_as<FirArgs>();
  auto sh = ctx.shared_as<float>();
  const int total_threads = ctx.threads_per_block * ctx.num_blocks;
  ctx.charge(512.0 / total_threads * 32 * 16.0);
  if (ctx.compute()) {
    for (int lane = 0; lane < 32; ++lane) {
      for (int i = ctx.tid(lane); i < 512; i += total_threads) {
        sh[static_cast<std::size_t>(i)] = a.in[i];
      }
    }
  }
  co_await ctx.sync_block();
  ctx.charge(512.0 / total_threads * 32 * 8.0);
  if (ctx.compute()) {
    for (int lane = 0; lane < 32; ++lane) {
      for (int i = ctx.tid(lane); i < 512; i += total_threads) {
        float acc = 0;
        for (int k = 0; k < 8; ++k) {
          if (i - k >= 0) acc += sh[static_cast<std::size_t>(i - k)] * 0.125f;
        }
        a.out[i] = acc;
      }
    }
  }
  co_return;
}

// --- app 3: tiny matmul -------------------------------------------------------
struct MulArgs {
  const float* a;
  const float* b;
  float* c;  // 16x16
};

gpu::KernelCoro mul_kernel(gpu::WarpCtx& ctx) {
  const auto& args = ctx.args_as<MulArgs>();
  const int total_threads = ctx.threads_per_block * ctx.num_blocks;
  ctx.charge(256.0 / total_threads * 32 * 40.0);
  ctx.charge_stall(256.0 / total_threads * 32 * 60.0);
  if (ctx.compute()) {
    for (int lane = 0; lane < 32; ++lane) {
      for (int i = ctx.tid(lane); i < 256; i += total_threads) {
        float acc = 0;
        for (int k = 0; k < 16; ++k) {
          acc += args.a[(i / 16) * 16 + k] * args.b[k * 16 + i % 16];
        }
        args.c[i] = acc;
      }
    }
  }
  co_return;
}

// --- app 4: Triple-DES --------------------------------------------------------
struct DesArgs {
  const std::uint64_t* in;
  std::uint64_t* out;
  const workloads::TripleDesKey* key;
  std::int32_t blocks;
};

gpu::KernelCoro des_kernel(gpu::WarpCtx& ctx) {
  const auto& a = ctx.args_as<DesArgs>();
  const int total_threads = ctx.threads_per_block * ctx.num_blocks;
  int mine = 0;
  for (int b = ctx.tid(0); b < a.blocks; b += total_threads) ++mine;
  ctx.charge(mine * 704.0);
  ctx.charge_stall(mine * 1400.0);
  if (ctx.compute()) {
    for (int lane = 0; lane < 32; ++lane) {
      for (int b = ctx.tid(lane); b < a.blocks; b += total_threads) {
        a.out[b] = workloads::triple_des_encrypt_block(a.in[b], *a.key);
      }
    }
  }
  co_return;
}

struct AppStats {
  const char* name;
  int done = 0;
  sim::Time finished = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const int per_app = argc > 1 ? std::atoi(argv[1]) : 128;
  std::printf("Pagoda multi-programmed node: 4 applications x %d tasks on "
              "one GPU\n\n",
              per_app);

  engine::SessionConfig cfg;
  cfg.pagoda_runtime = true;
  cfg.pagoda.mode = gpu::ExecMode::Compute;
  engine::Session session(cfg);
  session.start();
  sim::Simulation& sim = session.sim();
  Runtime& rt = session.rt();

  // Shared data pools (one slab per app; tasks index into them).
  SplitMix64 rng(99);
  std::vector<std::int32_t> tiles(static_cast<std::size_t>(per_app) * 1024);
  std::vector<float> signals(static_cast<std::size_t>(per_app) * 1024);
  std::vector<float> mats(static_cast<std::size_t>(per_app) * 768);
  std::vector<std::uint64_t> packets(static_cast<std::size_t>(per_app) * 512);
  for (auto& v : signals) v = static_cast<float>(rng.next_double());
  for (auto& v : mats) v = static_cast<float>(rng.next_double());
  for (auto& v : packets) v = rng.next();
  const auto key = workloads::triple_des_key(1, 2, 3);

  AppStats stats[4] = {{"mandelbrot"}, {"fir"}, {"matmul"}, {"3des"}};

  struct Apps {
    static sim::Process mandelbrot(sim::Simulation& sim, Runtime& rt,
                                   std::vector<std::int32_t>& tiles,
                                   int per_app, AppStats& st) {
      SplitMix64 rng(1);
      for (int t = 0; t < per_app; ++t) {
        co_await sim.delay(sim::microseconds(2.0));
        TaskParams p;
        p.fn = tile_kernel;
        p.threads_per_block = 128;
        p.set_args(TileArgs{tiles.data() + t * 1024,
                            -0.7 + 0.4 * (rng.next_double() - 0.5),
                            0.2 * (rng.next_double() - 0.5), 0.05});
        auto h = co_await rt.task_spawn(p);
        (void)h;
        st.done += 1;
      }
      co_await rt.wait_all();
      st.finished = sim.now();
    }
    static sim::Process fir(sim::Simulation& sim, Runtime& rt,
                            std::vector<float>& signals, int per_app,
                            AppStats& st) {
      for (int t = 0; t < per_app; ++t) {
        co_await sim.delay(sim::microseconds(3.0));
        TaskParams p;
        p.fn = fir_kernel;
        p.threads_per_block = 128;
        p.needs_sync = true;
        p.shared_mem_bytes = 512 * 4;
        p.set_args(FirArgs{signals.data() + t * 512,
                           signals.data() + per_app * 512 + t * 512});
        co_await rt.task_spawn(p);
        st.done += 1;
      }
      co_await rt.wait_all();
      st.finished = sim.now();
    }
    static sim::Process matmul(sim::Simulation& sim, Runtime& rt,
                               std::vector<float>& mats, int per_app,
                               AppStats& st) {
      for (int t = 0; t < per_app; ++t) {
        co_await sim.delay(sim::microseconds(1.5));
        float* base = mats.data() + t * 768;
        TaskParams p;
        p.fn = mul_kernel;
        p.threads_per_block = 64;
        p.set_args(MulArgs{base, base + 256, base + 512});
        co_await rt.task_spawn(p);
        st.done += 1;
      }
      co_await rt.wait_all();
      st.finished = sim.now();
    }
    static sim::Process des(sim::Simulation& sim, Runtime& rt,
                            std::vector<std::uint64_t>& packets,
                            const workloads::TripleDesKey& key, int per_app,
                            AppStats& st) {
      for (int t = 0; t < per_app; ++t) {
        co_await sim.delay(sim::microseconds(4.0));
        TaskParams p;
        p.fn = des_kernel;
        p.threads_per_block = 128;
        p.set_args(DesArgs{packets.data() + t * 256,
                           packets.data() + per_app * 256 + t * 256, &key,
                           256});
        co_await rt.task_spawn(p);
        st.done += 1;
      }
      co_await rt.wait_all();
      st.finished = sim.now();
    }
  };

  sim.spawn(Apps::mandelbrot(sim, rt, tiles, per_app, stats[0]));
  sim.spawn(Apps::fir(sim, rt, signals, per_app / 2, stats[1]));
  sim.spawn(Apps::matmul(sim, rt, mats, per_app / 2, stats[2]));
  sim.spawn(Apps::des(sim, rt, packets, key, per_app / 2, stats[3]));
  sim.run_until(sim::seconds(30.0));

  bool ok = true;
  for (const AppStats& st : stats) {
    if (st.finished == 0) ok = false;
    std::printf("%-11s %4d tasks, finished at %8.1f us\n", st.name, st.done,
                sim::to_microseconds(st.finished));
  }
  std::printf("\nGPU: %lld tasks scheduled, %lld warps dispatched, "
              "%lld shared-memory blocks recycled\n",
              static_cast<long long>(rt.master_kernel().tasks_scheduled()),
              static_cast<long long>(rt.master_kernel().warps_dispatched()),
              static_cast<long long>(rt.master_kernel().shmem_blocks_swept()));
  session.shutdown();
  std::printf("multiprogram check: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
