// trace_report: offline analyzer for `pagoda_cli --trace-spans=FILE` dumps
// (and the qos_isolation bench's --trace-spans output).
//
//   trace_report --in=spans.json                per-class/per-phase tables +
//                                               top-K slowest critical paths
//   trace_report --in=spans.json --top=10       more of the slow tail
//   trace_report --in=spans.json --explain-slo  name the dominant phase of
//                                               every slo_late/shed/dropped
//                                               request
//
// The tool re-checks the attribution invariant (phase buckets sum to the
// end-to-end latency for every request) and exits 1 when the dump violates
// it, so CI can gate on it end to end.
#include <cctype>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/flags.h"
#include "obs/attribution.h"
#include "obs/trace_span.h"

namespace {

using pagoda::obs::AttributionReport;
using pagoda::obs::DropSummary;
using pagoda::obs::kNumPhases;
using pagoda::obs::Phase;
using pagoda::obs::RequestSummary;

// --- minimal JSON DOM (the subset the tracer emits) -------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JsonValue> arr;
  std::vector<std::pair<std::string, JsonValue>> obj;

  const JsonValue* get(std::string_view key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  double number_or(std::string_view key, double def) const {
    const JsonValue* v = get(key);
    return v != nullptr && v->kind == Kind::kNumber ? v->num : def;
  }
  std::string string_or(std::string_view key, std::string def) const {
    const JsonValue* v = get(key);
    return v != nullptr && v->kind == Kind::kString ? v->str : def;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool parse(JsonValue* out, std::string* err) {
    const bool ok = value(out) && (skip_ws(), pos_ == text_.size());
    if (!ok && err != nullptr) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "JSON parse error at byte %zu", pos_);
      *err = buf;
    }
    return ok;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }
  bool string(std::string* out) {
    if (!eat('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        out->push_back(text_[pos_++]);
      } else {
        out->push_back(c);
      }
    }
    return false;
  }
  bool value(JsonValue* out) {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind = JsonValue::Kind::kObject;
      skip_ws();
      if (eat('}')) return true;
      while (true) {
        std::string key;
        JsonValue v;
        if (!string(&key) || !eat(':') || !value(&v)) return false;
        out->obj.emplace_back(std::move(key), std::move(v));
        if (eat('}')) return true;
        if (!eat(',')) return false;
      }
    }
    if (c == '[') {
      ++pos_;
      out->kind = JsonValue::Kind::kArray;
      skip_ws();
      if (eat(']')) return true;
      while (true) {
        JsonValue v;
        if (!value(&v)) return false;
        out->arr.push_back(std::move(v));
        if (eat(']')) return true;
        if (!eat(',')) return false;
      }
    }
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return string(&out->str);
    }
    if (c == 't') {
      out->kind = JsonValue::Kind::kBool;
      out->b = true;
      return literal("true");
    }
    if (c == 'f') {
      out->kind = JsonValue::Kind::kBool;
      return literal("false");
    }
    if (c == 'n') return literal("null");
    // Number.
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->kind = JsonValue::Kind::kNumber;
    out->num = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                           nullptr);
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

int phase_index(std::string_view name) {
  for (int p = 0; p < kNumPhases; ++p) {
    if (name == pagoda::obs::to_string(static_cast<Phase>(p))) return p;
  }
  return -1;
}

}  // namespace

int main(int argc, char** argv) {
  const pagoda::harness::Flags flags(argc, argv);
  const std::string bad = flags.unknown({"in", "top", "explain-slo", "help"});
  if (!bad.empty()) {
    std::fprintf(stderr, "error: unknown argument '%s' (try --help)\n",
                 bad.c_str());
    return 2;
  }
  if (flags.has("help") || !flags.has("in")) {
    std::printf(
        "usage: trace_report --in=spans.json [--top=K] [--explain-slo]\n"
        "analyzes a pagoda_cli --trace-spans dump: per-class/per-phase\n"
        "attribution, top-K slowest critical paths, and (--explain-slo) the\n"
        "dominant phase of every SLO casualty.\n");
    return flags.has("help") ? 0 : 2;
  }
  const std::string in_path = flags.get("in");
  const int top_k = static_cast<int>(flags.get_int("top", 5));

  std::ifstream in(in_path);
  if (!in) {
    std::fprintf(stderr, "error: cannot read '%s'\n", in_path.c_str());
    return 2;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  JsonValue root;
  std::string err;
  if (!JsonParser(text).parse(&root, &err) ||
      root.kind != JsonValue::Kind::kObject) {
    std::fprintf(stderr, "error: %s: %s\n", in_path.c_str(),
                 err.empty() ? "not a JSON object" : err.c_str());
    return 2;
  }
  if (root.string_or("format", "") != "pagoda-trace-spans-v1") {
    std::fprintf(stderr,
                 "error: %s is not a pagoda-trace-spans-v1 dump (format=%s)\n",
                 in_path.c_str(), root.string_or("format", "?").c_str());
    return 2;
  }

  AttributionReport report;
  if (const JsonValue* reqs = root.get("requests")) {
    for (const JsonValue& rv : reqs->arr) {
      RequestSummary s;
      s.uid = static_cast<std::uint64_t>(rv.number_or("uid", 0));
      s.cls = rv.string_or("class", "?");
      s.terminal = rv.string_or("terminal", "?");
      s.cause = rv.string_or("cause", "");
      s.e2e_us = rv.number_or("e2e_us", 0.0);
      s.slo_us = rv.number_or("slo_us", 0.0);
      s.slo_late = rv.number_or("slo_late", 0) != 0;
      s.attempts = static_cast<int>(rv.number_or("attempts", 0));
      if (const JsonValue* b = rv.get("buckets_us")) {
        for (const auto& [k, v] : b->obj) {
          const int p = phase_index(k);
          if (p >= 0 && v.kind == JsonValue::Kind::kNumber) {
            s.buckets_us[static_cast<std::size_t>(p)] = v.num;
          }
        }
      }
      if (const JsonValue* path = rv.get("critical_path")) {
        for (const JsonValue& leg : path->arr) {
          if (leg.arr.size() == 2 &&
              leg.arr[0].kind == JsonValue::Kind::kString &&
              leg.arr[1].kind == JsonValue::Kind::kNumber) {
            const int p = phase_index(leg.arr[0].str);
            if (p >= 0) s.path.emplace_back(p, leg.arr[1].num);
          }
        }
      }
      report.add(std::move(s));
    }
  }
  if (const JsonValue* drops = root.get("dropped")) {
    for (const JsonValue& dv : drops->arr) {
      report.add_dropped(
          DropSummary{dv.string_or("class", "?"), dv.number_or("slo_us", 0.0)});
    }
  }

  std::printf("trace      %s\n", in_path.c_str());
  if (const JsonValue* summary = root.get("summary")) {
    std::printf(
        "summary    requests=%lld completed=%lld shed=%lld evicted=%lld "
        "dropped=%lld slo_late=%lld unresolved=%lld\n",
        static_cast<long long>(summary->number_or("requests", 0)),
        static_cast<long long>(summary->number_or("completed", 0)),
        static_cast<long long>(summary->number_or("shed", 0)),
        static_cast<long long>(summary->number_or("evicted", 0)),
        static_cast<long long>(summary->number_or("dropped", 0)),
        static_cast<long long>(summary->number_or("slo_late", 0)),
        static_cast<long long>(summary->number_or("unresolved", 0)));
  }
  if (report.empty()) {
    std::printf("empty trace: no requests or drops recorded\n");
    return 0;
  }

  std::string invariant_err;
  if (!report.validate(&invariant_err)) {
    std::fprintf(stderr, "error: attribution invariant violated: %s\n",
                 invariant_err.c_str());
    return 1;
  }

  std::printf("\n");
  {
    std::ostringstream os;
    report.write_phase_table(os);
    std::fputs(os.str().c_str(), stdout);
  }
  std::printf("\n");
  {
    std::ostringstream os;
    report.write_top_k(os, top_k);
    std::fputs(os.str().c_str(), stdout);
  }
  if (flags.has("explain-slo")) {
    std::printf("\n");
    std::ostringstream os;
    report.write_explain_slo(os);
    std::fputs(os.str().c_str(), stdout);
  }
  return 0;
}
