// pagoda_cli: run any (workload x runtime) experiment from the command line.
//
//   pagoda_cli --workload=MM --runtime=Pagoda --tasks=4096 --threads=128
//   pagoda_cli --workload=3DES --runtime=HyperQ --no-copies
//   pagoda_cli --workload=MB --runtime=Pagoda --compute     # verify outputs
//   pagoda_cli --workload=MM --runtime=Pagoda --trace=out.csv
//   pagoda_cli --list
//
// Prints end-to-end time, occupancy, wire utilization and per-task latency
// percentiles; optionally dumps the Pagoda event trace as CSV.
#include <cstdio>
#include <fstream>
#include <string>

#include "baselines/factories.h"
#include "common/stats.h"
#include "gpu/device.h"
#include "harness/calibration.h"
#include "harness/experiment.h"
#include "harness/flags.h"
#include "pagoda/runtime.h"
#include "pagoda/trace.h"

using namespace pagoda;
using harness::Flags;

namespace {

int list_options() {
  std::printf("workloads: ");
  for (const auto wl : workloads::all_workload_names()) {
    std::printf("%s ", std::string(wl).c_str());
  }
  std::printf("\nruntimes:  Sequential PThreads HyperQ GeMTC Fusion Pagoda "
              "PagodaBatching\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.has("list") || flags.has("help")) return list_options();

  const std::string wl = flags.get("workload", "MM");
  const std::string rt = flags.get("runtime", "Pagoda");

  workloads::WorkloadConfig wcfg;
  wcfg.num_tasks = static_cast<int>(flags.get_int("tasks", 4096));
  wcfg.threads_per_task = static_cast<int>(flags.get_int("threads", 128));
  wcfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 0x9A60DA));
  wcfg.input_scale = static_cast<int>(flags.get_int("input", 0));
  wcfg.blocks_per_task = static_cast<int>(flags.get_int("blocks", 1));
  wcfg.irregular_sizes = flags.has("irregular");
  wcfg.dynamic_threads = flags.has("dynamic-threads");
  wcfg.use_shared_memory = !flags.has("no-shmem");

  baselines::RunConfig rcfg = harness::paper_platform();
  rcfg.mode = flags.has("compute") ? gpu::ExecMode::Compute
                                   : gpu::ExecMode::Model;
  rcfg.include_data_copies = !flags.has("no-copies");
  rcfg.collect_latencies = true;
  rcfg.batch_size = static_cast<int>(flags.get_int("batch", 0));
  rcfg.pagoda.rows_per_column =
      static_cast<int>(flags.get_int("rows", 32));
  rcfg.pagoda.two_copy_spawn = flags.has("two-copy");

  if (!harness::runtime_supports(wl, rt, wcfg)) {
    std::fprintf(stderr, "error: %s cannot run %s as configured\n",
                 rt.c_str(), wl.c_str());
    return 1;
  }

  // The harness path covers every runtime; the trace path (Pagoda only)
  // needs direct access to the runtime object, so --trace uses a dedicated
  // run through the same driver.
  const std::string trace_path = flags.get("trace");
  if (!trace_path.empty() && rt != "Pagoda") {
    std::fprintf(stderr, "error: --trace requires --runtime=Pagoda\n");
    return 1;
  }

  const harness::Measurement m = harness::run_experiment(wl, rt, wcfg, rcfg);

  std::printf("workload   %s  (%d tasks, %d threads/task%s%s)\n", wl.c_str(),
              wcfg.num_tasks, wcfg.threads_per_task,
              wcfg.irregular_sizes ? ", irregular sizes" : "",
              rcfg.include_data_copies ? "" : ", no data copies");
  std::printf("runtime    %s\n", rt.c_str());
  std::printf("mode       %s\n",
              rcfg.mode == gpu::ExecMode::Compute ? "compute (verified)"
                                                  : "model");
  std::printf("time       %.3f ms\n", m.result.elapsed_ms());
  std::printf("occupancy  %.1f%%\n", m.result.occupancy * 100.0);
  std::printf("PCIe wire  H2D %.2f ms busy, D2H %.2f ms busy\n",
              sim::to_milliseconds(m.result.h2d_wire_busy),
              sim::to_milliseconds(m.result.d2h_wire_busy));
  if (!m.result.task_latency_us.empty()) {
    std::printf("latency    mean %.1f us   p50 %.1f us   p99 %.1f us\n",
                arithmetic_mean(m.result.task_latency_us),
                percentile(m.result.task_latency_us, 50),
                percentile(m.result.task_latency_us, 99));
  }

  if (!trace_path.empty()) {
    // Re-run with tracing enabled through a bare Pagoda runtime.
    sim::Simulation sim;
    gpu::Device dev(sim, rcfg.spec, rcfg.pcie);
    runtime::PagodaConfig pcfg = rcfg.pagoda;
    pcfg.mode = rcfg.mode;
    runtime::Runtime prt(dev, rcfg.host, pcfg);
    runtime::TraceRecorder trace;
    prt.set_trace_recorder(&trace);
    prt.start();
    auto workload = workloads::make_workload(wl);
    workload->generate(wcfg);
    struct Spawner {
      static sim::Process run(runtime::Runtime& prt,
                              std::span<const workloads::TaskSpec> tasks,
                              bool& done) {
        for (const workloads::TaskSpec& t : tasks) {
          co_await prt.task_spawn(t.params);
        }
        co_await prt.wait_all();
        done = true;
      }
    };
    bool done = false;
    sim.spawn(Spawner::run(prt, workload->tasks(), done));
    sim.run_until(rcfg.time_cap);
    prt.shutdown();
    std::ofstream out(trace_path);
    if (flags.get("trace-format", "csv") == "chrome") {
      trace.write_chrome_trace(out);  // open in chrome://tracing / Perfetto
    } else {
      trace.write_csv(out);
    }
    std::printf("trace      %zu events -> %s%s\n", trace.events().size(),
                trace_path.c_str(), done ? "" : " (INCOMPLETE RUN)");
  }
  return 0;
}
