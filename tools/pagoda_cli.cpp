// pagoda_cli: run any (workload x runtime) experiment from the command line.
//
//   pagoda_cli --workload=MM --runtime=Pagoda --tasks=4096 --task-threads=128
//   pagoda_cli --workload=3DES --runtime=HyperQ --no-copies
//   pagoda_cli --workload=MM --gpus=64 --arrival=poisson:2.0 --threads=4
//   pagoda_cli --workload=MB --runtime=Pagoda --compute     # verify outputs
//   pagoda_cli --workload=MM --runtime=Pagoda --trace=out.csv
//   pagoda_cli --workload=MM --runtime=GeMTC --metrics
//   pagoda_cli --workload=MM --runtime=Pagoda --metrics=metrics.json
//   pagoda_cli --workload=MM --runtime=HyperQ --profile=profile.json
//   pagoda_cli --workload=MM --runtime=all               # comparison table
//   pagoda_cli --workload=MM --runtime=HyperQ,GeMTC,Pagoda
//   pagoda_cli --list
//
// Prints end-to-end time, occupancy, wire utilization and per-task latency
// percentiles. `--metrics` adds the full observability snapshot (text report
// to stdout, or the stable JSON form when given a path); `--profile` writes
// a Chrome/Perfetto trace-event file with task spans, PCIe transfers, kernel
// grids and counter tracks; `--trace` dumps the raw event trace for ANY
// runtime — the Pagoda protocol trace for Pagoda runtimes, the generic
// timeline for the rest.
//
// `--threads=N` (Cluster runtime only) runs the sharded simulation core on
// an N-thread worker pool; results are identical to --threads=1.
// `--sim-core=global` forces the pre-shard single global event queue.
#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <thread>

#include "baselines/factories.h"
#include "cluster/placement.h"
#include "cluster/traffic.h"
#include "common/alloc_tuning.h"
#include "common/stats.h"
#include "fault/plan.h"
#include "harness/calibration.h"
#include "harness/experiment.h"
#include "harness/flags.h"
#include "migrate/autoscaler.h"
#include "obs/collector.h"
#include "pagoda/trace.h"
#include "power/governor.h"
#include "power/power_spec.h"
#include "sched/policy.h"

using namespace pagoda;
using harness::Flags;

namespace {

int list_options() {
  std::printf("workloads: ");
  for (const auto wl : workloads::all_workload_names()) {
    std::printf("%s ", std::string(wl).c_str());
  }
  std::printf("\nruntimes:  ");
  for (const std::string_view rt : baselines::all_runtime_names()) {
    std::printf("%s ", std::string(rt).c_str());
  }
  std::printf("(or a comma list, or \"all\" for a comparison table)\n");
  std::printf(
      "flags:     --tasks=N --task-threads=N --blocks=N --seed=N --input=N\n"
      "           --irregular --dynamic-threads --no-shmem --no-copies\n"
      "           --compute --batch=N --rows=N --two-copy\n"
      "           --metrics[=out.json] --metrics-period=US\n"
      "           --profile[=out.json] --trace=out.csv "
      "--trace-format=csv|chrome\n"
      "           --list-workloads   (Table 3 traits per workload)\n"
      "vres:      --oversub=F  (virtual resource plane, F >= 1.0;\n"
      "            1.0 = physical reservations, byte-identical baseline)\n"
      "qos:       --sched-policy=fifo|priority|edf|wfq\n"
      "           --class=interactive|standard|batch --weights=A,B,C (wfq)\n"
      "cluster:   --gpus=N | --gpus=titanx,k40,...   (selects the Cluster "
      "runtime)\n"
      "           --policy=NAME --arrival=SPEC --slo-us=X --queue-limit=N\n"
      "           --faults=SPEC --retry-budget=N --task-timeout-us=X\n"
      "           --threads=N (simulation worker pool) "
      "--sim-core=sharded|global\n"
      "           --trace-spans=out.json   (per-request causal span dump;\n"
      "            analyze with tools/trace_report)\n"
      "power:     --power=SPEC --governor=NAME --power-cap-watts=X\n"
      "           --list-policies   (placement/sched/governor catalog)\n"
      "elastic:   --migrate   (checkpoint/restore drains instead of "
      "shedding)\n"
      "           --autoscale=UTIL[:LOW:HIGH[:MIN]] (needs --migrate "
      "--power)\n"
      "           --resize=AT_US:NODES[,...]        (rolling-resize plan)\n"
      "faults:    comma list of task:P | xfer:P | wedge:P |\n"
      "           crash:NODE:T_US[:RECOVER_US] |\n"
      "           degrade:T_US:DUR_US:FACTOR[:NODE] | seed:N\n");
  std::printf("policies:  ");
  for (const std::string_view p : cluster::all_policy_names()) {
    std::printf("%s ", std::string(p).c_str());
  }
  std::printf("\narrivals:  %s\n",
              std::string(cluster::ArrivalConfig::choices()).c_str());
  return 0;
}

const char* policy_desc(std::string_view name) {
  if (name == "round-robin") {
    return "rotate over nodes, blind to load (the baseline)";
  }
  if (name == "least-outstanding") {
    return "fewest placed-but-unfinished requests wins";
  }
  if (name == "least-loaded") {
    return "executor occupancy + outstanding work per unit capacity";
  }
  if (name == "data-affinity") {
    return "route keyed requests to the node already holding their data";
  }
  if (name == "power-cap") {
    return "least-loaded, refuses admission while fleet watts >= the cap";
  }
  if (name == "energy-min") {
    return "pack the fewest awake nodes so the governor can sleep the rest";
  }
  if (name == "vres-aware") {
    return "virtual slot headroom minus spill pressure (pairs with --oversub)";
  }
  return "";
}

/// --list-policies: every pluggable decision maker — placement policies,
/// QoS scheduling policies and power governors — with one-line descriptions.
/// Strict-validation errors for the corresponding flags point here.
int list_policies() {
  std::printf("placement policies (--policy):\n");
  for (const std::string_view p : cluster::all_policy_names()) {
    std::printf("  %-18s %s\n", std::string(p).c_str(), policy_desc(p));
  }
  std::printf("\nscheduling policies (--sched-policy):\n");
  std::printf("  %-18s %s\n", "fifo",
              "arrival order; reproduces the legacy semaphore byte-for-byte");
  std::printf("  %-18s %s\n", "priority",
              "strict class priority (interactive > standard > batch)");
  std::printf("  %-18s %s\n", "edf",
              "earliest absolute deadline first; FIFO for deadline-free work");
  std::printf("  %-18s %s\n", "wfq",
              "weighted fair queueing over classes (--weights=A,B,C)");
  std::printf("\npower governors (--governor, needs --power):\n");
  for (const std::string_view g : power::all_governor_names()) {
    std::printf("  %-18s %s\n", std::string(g).c_str(),
                std::string(power::governor_description(
                                *power::parse_governor(g)))
                    .c_str());
  }
  std::printf("\npower spec (--power): %s\n",
              power::PowerSpec::grammar());
  std::printf("\nelastic fleet (--migrate, --autoscale, --resize, needs "
              "--power):\n");
  std::printf("  %-18s %s\n", "--migrate",
              "drains checkpoint in-flight attempts and restore them "
              "on another node (migrate, not shed)");
  std::printf("  %-18s %s\n", "--autoscale=SPEC",
              "target-utilization resizer: UTIL[:LOW:HIGH[:MIN]] with "
              "hysteresis watermarks; sleeps the tail at troughs, wakes "
              "it at peaks");
  std::printf("  %-18s %s\n", "--resize=PLAN",
              "explicit rolling resize AT_US:NODES[,...]; each shrink "
              "drains, migrates, then S-sleeps one node at a time");
  std::printf(
      "\nsimulation core (--sim-core, --threads, Cluster runtime only):\n");
  std::printf("  %-18s %s\n", "sharded",
              "per-node event shards, lookahead barrier (the default)");
  std::printf("  %-18s %s\n", "global",
              "pre-shard single event queue (determinism reference)");
  std::printf("  %-18s %s\n", "--threads=N",
              "worker threads draining node shards; N=1 is sequential and "
              "exact (threads per task moved to --task-threads)");
  return 0;
}

bool is_runtime_name(const std::string& name) {
  for (const std::string_view rt : baselines::all_runtime_names()) {
    if (name == rt) return true;
  }
  return false;
}

/// --runtime= value: one name, a comma list, or "all". Empty vector (after
/// the printed error) on an unknown name.
std::vector<std::string> parse_runtimes(const std::string& v) {
  std::vector<std::string> names;
  std::size_t pos = 0;
  while (pos <= v.size()) {
    const std::size_t comma = v.find(',', pos);
    names.push_back(v.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (names.size() == 1 && names[0] == "all") {
    names.assign(baselines::all_runtime_names().begin(),
                 baselines::all_runtime_names().end());
    return names;
  }
  for (const std::string& n : names) {
    if (!is_runtime_name(n)) {
      std::fprintf(stderr, "error: unknown --runtime '%s'; valid runtimes:",
                   n.c_str());
      for (const std::string_view rt : baselines::all_runtime_names()) {
        std::fprintf(stderr, " %s", std::string(rt).c_str());
      }
      std::fprintf(stderr, " all\n");
      return {};
    }
  }
  return names;
}

/// --gpus= value: a device count ("4") or a comma list of spec names
/// ("titanx,k40"). Empty vector on a malformed value.
std::vector<gpu::GpuSpec> parse_gpus(const std::string& v) {
  std::vector<gpu::GpuSpec> specs;
  if (v.find_first_not_of("0123456789") == std::string::npos && !v.empty()) {
    const int n = std::stoi(v);
    if (n < 1 || n > 256) return {};
    specs.assign(static_cast<std::size_t>(n), gpu::GpuSpec::titan_x());
    return specs;
  }
  std::size_t pos = 0;
  while (pos <= v.size()) {
    const std::size_t comma = v.find(',', pos);
    const std::string name = v.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (name == "titanx" || name == "titan_x") {
      specs.push_back(gpu::GpuSpec::titan_x());
    } else if (name == "k40" || name == "tesla_k40") {
      specs.push_back(gpu::GpuSpec::tesla_k40());
    } else {
      return {};
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return specs;
}

/// --weights= value: three comma-separated positive finite doubles
/// (interactive,standard,batch). nullopt on anything else.
std::optional<std::array<double, sched::kNumClasses>> parse_weights(
    const std::string& v) {
  std::array<double, sched::kNumClasses> w{};
  std::size_t pos = 0;
  for (int i = 0; i < sched::kNumClasses; ++i) {
    const std::size_t comma = v.find(',', pos);
    const bool last = i == sched::kNumClasses - 1;
    if (last != (comma == std::string::npos)) return std::nullopt;
    const std::string part = v.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    errno = 0;
    char* end = nullptr;
    w[static_cast<std::size_t>(i)] = std::strtod(part.c_str(), &end);
    if (errno != 0 || part.empty() || end != part.c_str() + part.size() ||
        !(w[static_cast<std::size_t>(i)] > 0.0) ||
        !std::isfinite(w[static_cast<std::size_t>(i)])) {
      return std::nullopt;
    }
    pos = comma + 1;
  }
  return w;
}

/// --list-workloads: one row per benchmark with its Table-3 shape — default
/// task dimensions, the resource footprint the virtual plane reasons about
/// (shared-memory bytes per block, registers per thread, blocks per
/// dependency wave), and wave depth (generated at a small task count; the
/// traits don't depend on it).
int list_workloads() {
  std::printf("%-6s %12s %9s %10s %9s %6s  %s\n", "name", "threads/task",
              "regs/thr", "shmem/blk", "blk/wave", "waves", "traits");
  for (const std::string_view name : workloads::all_workload_names()) {
    std::unique_ptr<workloads::Workload> w = workloads::make_workload(name);
    workloads::WorkloadConfig cfg;
    cfg.num_tasks = 16;
    w->generate(cfg);
    const workloads::WorkloadTraits tr = w->traits();
    const workloads::TaskSpec& t = w->tasks().front();
    const int waves = w->max_wave() + 1;
    std::int64_t total_blocks = 0;
    for (const workloads::TaskSpec& s : w->tasks()) {
      total_blocks += s.params.num_blocks;
    }
    std::string traits;
    if (tr.irregular) traits += "irregular ";
    if (tr.may_use_shared) traits += "shared-mem ";
    if (tr.needs_sync) traits += "block-sync ";
    std::printf("%-6s %12d %9d %9dB %9lld %6d  %s\n", std::string(name).c_str(),
                t.params.threads_per_block * t.params.num_blocks,
                t.regs_per_thread, t.params.shared_mem_bytes,
                static_cast<long long>(total_blocks / waves), waves,
                traits.empty() ? "-" : traits.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  common::tune_allocator_for_batch_runs();
  const Flags flags(argc, argv);
  const std::string bad = flags.unknown(
      {"list", "list-workloads", "list-policies", "help", "workload",
       "runtime", "tasks", "threads", "task-threads", "seed", "input",
       "blocks", "irregular", "dynamic-threads", "no-shmem", "compute",
       "no-copies", "batch", "rows", "two-copy", "trace", "trace-format",
       "metrics", "metrics-period", "profile", "gpus", "policy", "arrival",
       "slo-us", "queue-limit", "faults", "retry-budget", "task-timeout-us",
       "sched-policy", "class", "weights", "trace-spans", "power", "governor",
       "power-cap-watts", "sim-core", "migrate", "autoscale", "resize",
       "oversub"});
  if (!bad.empty()) {
    std::fprintf(stderr, "error: unknown argument '%s' (try --help)\n",
                 bad.c_str());
    return 1;
  }
  if (flags.has("list") || flags.has("help")) return list_options();
  if (flags.has("list-workloads")) return list_workloads();
  if (flags.has("list-policies")) return list_policies();

  const std::string wl = flags.get("workload", "MM");
  // Any cluster flag selects the Cluster runtime; --runtime=Cluster works
  // too (with --gpus defaulting to a single Titan X).
  const std::vector<std::string> rts = parse_runtimes(
      flags.get("runtime", flags.has("gpus") ? "Cluster" : "Pagoda"));
  if (rts.empty()) return 1;
  const bool multi = rts.size() > 1;
  if (flags.has("gpus") && (multi || rts[0] != "Cluster")) {
    std::fprintf(stderr, "error: --gpus only applies to --runtime=Cluster\n");
    return 1;
  }
  for (const char* f : {"faults", "retry-budget", "task-timeout-us",
                        "trace-spans", "power", "governor",
                        "power-cap-watts", "threads", "sim-core",
                        "migrate", "autoscale", "resize"}) {
    if (flags.has(f) && (multi || rts[0] != "Cluster")) {
      std::fprintf(stderr, "error: --%s only applies to --runtime=Cluster\n",
                   f);
      return 1;
    }
  }
  const std::string rt = rts[0];
  const bool want_cluster = !multi && rt == "Cluster";
  const bool pagoda_rt = rt == "Pagoda" || rt == "PagodaBatching";

  workloads::WorkloadConfig wcfg;
  wcfg.num_tasks = static_cast<int>(flags.get_int("tasks", 4096));
  wcfg.threads_per_task = static_cast<int>(flags.get_int("task-threads", 128));
  wcfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 0x9A60DA));
  wcfg.input_scale = static_cast<int>(flags.get_int("input", 0));
  wcfg.blocks_per_task = static_cast<int>(flags.get_int("blocks", 1));
  wcfg.irregular_sizes = flags.has("irregular");
  wcfg.dynamic_threads = flags.has("dynamic-threads");
  wcfg.use_shared_memory = !flags.has("no-shmem");

  baselines::RunConfig rcfg = harness::paper_platform();
  rcfg.mode = flags.has("compute") ? gpu::ExecMode::Compute
                                   : gpu::ExecMode::Model;
  rcfg.include_data_copies = !flags.has("no-copies");
  rcfg.collect_latencies = true;
  rcfg.batch_size = static_cast<int>(flags.get_int("batch", 0));
  rcfg.pagoda.rows_per_column =
      static_cast<int>(flags.get_int("rows", 32));
  rcfg.pagoda.two_copy_spawn = flags.has("two-copy");

  // Virtual resource plane (DESIGN.md §16): ONE factor drives shared-memory
  // and register virtualization inside every MasterKernel plus virtual
  // TaskTable-slot admission in the cluster dispatcher. 1.0 (the default)
  // is byte-identical to physical reservations.
  const double oversub = flags.get_double("oversub", 1.0);
  if (flags.has("oversub")) {
    if (flags.get("oversub", "").empty()) {
      std::fprintf(stderr,
                   "error: --oversub needs a factor (e.g. --oversub=1.5)\n");
      return 1;
    }
    if (multi || !(pagoda_rt || rt == "Cluster")) {
      std::fprintf(stderr,
                   "error: --oversub needs a single Pagoda, PagodaBatching "
                   "or Cluster runtime (the virtual resource plane lives in "
                   "the MasterKernel)\n");
      return 1;
    }
    if (!std::isfinite(oversub) || oversub < 1.0) {
      std::fprintf(stderr,
                   "error: --oversub must be a finite factor >= 1.0 "
                   "(1.0 = physical reservations; e.g. --oversub=1.5 "
                   "admits 1.5x the declared footprints)\n");
      return 1;
    }
  }
  rcfg.pagoda.oversub = oversub;

  // QoS scheduling: one --sched-policy flag drives every layer that orders
  // work (cluster admission, host spawn order, scheduler-warp claim order).
  const bool qos_flags = flags.has("sched-policy") || flags.has("class") ||
                         flags.has("weights");
  if (qos_flags && (multi || !(pagoda_rt || want_cluster))) {
    std::fprintf(stderr,
                 "error: --sched-policy/--class/--weights need a single "
                 "Pagoda, PagodaBatching or Cluster runtime\n");
    return 1;
  }
  rcfg.pagoda.sched.kind = *sched::parse_policy_kind(flags.get_enum(
      "sched-policy", "fifo", {"fifo", "priority", "edf", "wfq"}));
  rcfg.task_class = *sched::parse_class(flags.get_enum(
      "class", "standard", {"interactive", "standard", "batch"}));
  if (flags.has("weights")) {
    if (rcfg.pagoda.sched.kind != sched::PolicyKind::kWfq) {
      std::fprintf(stderr,
                   "error: --weights only applies to --sched-policy=wfq\n");
      return 1;
    }
    const std::optional<std::array<double, sched::kNumClasses>> w =
        parse_weights(flags.get("weights"));
    if (!w.has_value()) {
      std::fprintf(stderr,
                   "error: bad --weights '%s' (want three positive numbers: "
                   "interactive,standard,batch — e.g. --weights=4,2,1)\n",
                   flags.get("weights").c_str());
      return 1;
    }
    rcfg.pagoda.sched.weights = *w;
  }
  rcfg.cluster.sched = rcfg.pagoda.sched;
  rcfg.cluster.default_class = rcfg.task_class;
  rcfg.cluster.qos = qos_flags;  // arm sched.* export even under fifo

  if (want_cluster) {
    rcfg.cluster.specs = parse_gpus(flags.get("gpus", "1"));
    if (rcfg.cluster.specs.empty()) {
      std::fprintf(stderr,
                   "error: bad --gpus value '%s' (want a count or a comma "
                   "list of titanx/k40)\n",
                   flags.get("gpus").c_str());
      return 1;
    }
    // Simulation-core controls. Strict like --policy: reject nonsense
    // outright, warn when the pool oversubscribes the machine.
    rcfg.cluster.global_queue =
        flags.get_enum("sim-core", "sharded", {"sharded", "global"}) ==
        "global";
    const std::int64_t sim_threads = flags.get_int("threads", 1);
    if (sim_threads < 1) {
      std::fprintf(stderr,
                   "error: --threads must be >= 1 (1 = the sequential "
                   "sharded core; see --list-policies)\n");
      return 1;
    }
    if (rcfg.cluster.global_queue && sim_threads > 1) {
      std::fprintf(stderr,
                   "error: --sim-core=global is the single-queue reference "
                   "core and cannot use a worker pool; drop --threads or "
                   "use --sim-core=sharded\n");
      return 1;
    }
    // --threads sizes the simulation worker pool; before the sharded core
    // it meant threads-per-task (now --task-threads). A stale script passing
    // a workload-sized value (e.g. --threads=128) must fail loudly, not
    // silently spawn a 128-thread pool, so anything beyond both the machine
    // and a small oversubscription floor is rejected outright.
    const unsigned hw = std::thread::hardware_concurrency();
    const std::int64_t pool_cap =
        std::max<std::int64_t>(hw == 0 ? 8 : static_cast<std::int64_t>(hw), 8);
    if (sim_threads > pool_cap) {
      std::fprintf(stderr,
                   "error: --threads=%lld is not a plausible worker-pool "
                   "size on this machine (%u hardware threads, cap %lld). "
                   "--threads sizes the simulation worker pool; if you meant "
                   "threads per task, that flag is now --task-threads=N\n",
                   static_cast<long long>(sim_threads), hw,
                   static_cast<long long>(pool_cap));
      return 1;
    }
    if (hw > 0 && sim_threads > static_cast<std::int64_t>(hw)) {
      std::fprintf(stderr,
                   "warning: --threads=%lld exceeds the machine's %u "
                   "hardware threads; the extra workers only add contention\n",
                   static_cast<long long>(sim_threads), hw);
    }
    rcfg.cluster.sim_threads = static_cast<int>(sim_threads);
    rcfg.cluster.policy =
        flags.get_enum("policy", "round-robin", cluster::all_policy_names());
    // get_enum validated the arrival *kind*; the rate/factor tail still
    // needs the full parser.
    rcfg.cluster.arrival = flags.get_enum(
        "arrival", "closed",
        {"closed", "poisson:RATE", "bursty:RATE[:FACTOR]",
         "diurnal:RATE[:FACTOR[:ON_US]]"});
    if (!cluster::ArrivalConfig::parse(rcfg.cluster.arrival).has_value()) {
      std::fprintf(stderr,
                   "error: bad --arrival '%s'; valid forms: %s\n",
                   rcfg.cluster.arrival.c_str(),
                   std::string(cluster::ArrivalConfig::choices()).c_str());
      return 1;
    }
    const double slo_us = flags.get_double("slo-us", 0.0);
    if (slo_us < 0.0) {
      std::fprintf(stderr, "error: --slo-us must be >= 0\n");
      return 1;
    }
    if (flags.has("slo-us") && slo_us == 0.0) {
      std::fprintf(stderr,
                   "error: --slo-us=0 is ambiguous; omit the flag to disable "
                   "SLO accounting, or pass a positive deadline "
                   "(e.g. --slo-us=5000)\n");
      return 1;
    }
    rcfg.cluster.slo = sim::microseconds(slo_us);
    rcfg.cluster.queue_limit =
        static_cast<int>(flags.get_int("queue-limit", 0));
    rcfg.cluster.seed = wcfg.seed;

    rcfg.cluster.faults = flags.get("faults");
    std::string fault_err;
    const std::optional<fault::FaultPlan> plan =
        fault::FaultPlan::parse(rcfg.cluster.faults, &fault_err);
    if (!plan.has_value()) {
      std::fprintf(stderr,
                   "error: bad --faults spec: %s\n"
                   "valid forms (comma list): task:P xfer:P wedge:P "
                   "crash:NODE:T_US[:RECOVER_US] "
                   "degrade:T_US:DUR_US:FACTOR[:NODE] seed:N\n",
                   fault_err.c_str());
      return 1;
    }
    const double timeout_us = flags.get_double("task-timeout-us", 0.0);
    if (timeout_us < 0.0) {
      std::fprintf(stderr, "error: --task-timeout-us must be >= 0\n");
      return 1;
    }
    rcfg.cluster.task_timeout = sim::microseconds(timeout_us);
    if (plan->needs_deadline() && timeout_us == 0.0) {
      std::fprintf(stderr,
                   "error: this --faults plan wedges tasks or crashes nodes, "
                   "which only a task deadline can detect; add "
                   "--task-timeout-us=X (e.g. --task-timeout-us=2000)\n");
      return 1;
    }
    rcfg.cluster.retry_budget =
        static_cast<int>(flags.get_int("retry-budget", -1));
    if (flags.has("retry-budget") && rcfg.cluster.retry_budget < 0) {
      std::fprintf(stderr,
                   "error: --retry-budget must be >= 0 (0 disables retries)\n");
      return 1;
    }
    for (const fault::CrashEvent& ev : plan->crashes) {
      if (ev.node >= static_cast<int>(rcfg.cluster.specs.size())) {
        std::fprintf(stderr,
                     "error: --faults crash targets node %d but the cluster "
                     "has %zu node(s)\n",
                     ev.node, rcfg.cluster.specs.size());
        return 1;
      }
    }

    // Power plane: --power arms the model; --governor and --power-cap-watts
    // refine it and are meaningless without it, so they fail fast.
    rcfg.cluster.power = flags.get("power");
    if (flags.has("power") && rcfg.cluster.power.empty()) {
      std::fprintf(stderr,
                   "error: --power needs a spec (e.g. --power=default or "
                   "--power=default:floor=2); see --list-policies\n");
      return 1;
    }
    if (!rcfg.cluster.power.empty()) {
      std::string power_err;
      if (!power::PowerSpec::parse(rcfg.cluster.power, &power_err)
               .has_value()) {
        std::fprintf(stderr, "error: bad --power spec: %s\n",
                     power_err.c_str());
        return 1;
      }
    }
    if (flags.has("governor") && rcfg.cluster.power.empty()) {
      std::fprintf(stderr,
                   "error: --governor needs the power plane; add "
                   "--power=SPEC (see --list-policies)\n");
      return 1;
    }
    rcfg.cluster.governor = flags.get("governor", "static");
    if (!power::parse_governor(rcfg.cluster.governor).has_value()) {
      std::fprintf(stderr,
                   "error: unknown --governor '%s'; valid governors:",
                   rcfg.cluster.governor.c_str());
      for (const std::string_view g : power::all_governor_names()) {
        std::fprintf(stderr, " %s", std::string(g).c_str());
      }
      std::fprintf(stderr, " (see --list-policies)\n");
      return 1;
    }
    rcfg.cluster.power_cap_watts = flags.get_double("power-cap-watts", 0.0);
    if (flags.has("power-cap-watts")) {
      if (rcfg.cluster.power_cap_watts <= 0.0) {
        std::fprintf(stderr, "error: --power-cap-watts must be > 0\n");
        return 1;
      }
      if (rcfg.cluster.power.empty()) {
        std::fprintf(stderr,
                     "error: --power-cap-watts needs the power plane; add "
                     "--power=SPEC (see --list-policies)\n");
        return 1;
      }
      if (rcfg.cluster.governor != "powercap" &&
          rcfg.cluster.policy != "power-cap") {
        std::fprintf(stderr,
                     "error: --power-cap-watts needs an enforcer: "
                     "--governor=powercap or --policy=power-cap "
                     "(see --list-policies)\n");
        return 1;
      }
    }

    // Elastic plane: --migrate arms checkpoint/restore drains; --autoscale
    // and --resize additionally need the power plane (they park nodes in
    // S-states) and are meaningless without either, so they fail fast.
    rcfg.cluster.migrate = flags.has("migrate");
    rcfg.cluster.autoscale = flags.get("autoscale");
    rcfg.cluster.resize = flags.get("resize");
    if (flags.has("autoscale") && rcfg.cluster.autoscale.empty()) {
      std::fprintf(stderr,
                   "error: --autoscale needs a spec "
                   "(UTIL[:LOW:HIGH[:MIN]], e.g. --autoscale=0.6); "
                   "see --list-policies\n");
      return 1;
    }
    if (flags.has("resize") && rcfg.cluster.resize.empty()) {
      std::fprintf(stderr,
                   "error: --resize needs a plan (AT_US:NODES[,...], e.g. "
                   "--resize=50000:8); see --list-policies\n");
      return 1;
    }
    std::string elastic_err;
    if (!rcfg.cluster.autoscale.empty() &&
        !migrate::parse_autoscale_spec(rcfg.cluster.autoscale, &elastic_err)
             .has_value()) {
      std::fprintf(stderr, "error: bad --autoscale spec: %s\n",
                   elastic_err.c_str());
      return 1;
    }
    if (!rcfg.cluster.resize.empty() &&
        !migrate::parse_resize_spec(rcfg.cluster.resize, &elastic_err)
             .has_value()) {
      std::fprintf(stderr, "error: bad --resize spec: %s\n",
                   elastic_err.c_str());
      return 1;
    }
    if ((flags.has("autoscale") || flags.has("resize")) &&
        !rcfg.cluster.migrate) {
      std::fprintf(stderr,
                   "error: --%s resizes the fleet by draining nodes, which "
                   "needs the migration plane; add --migrate "
                   "(see --list-policies)\n",
                   flags.has("autoscale") ? "autoscale" : "resize");
      return 1;
    }
    if ((flags.has("autoscale") || flags.has("resize")) &&
        rcfg.cluster.power.empty()) {
      std::fprintf(stderr,
                   "error: --%s parks drained nodes in S-states, which "
                   "needs the power plane; add --power=SPEC "
                   "(see --list-policies)\n",
                   flags.has("autoscale") ? "autoscale" : "resize");
      return 1;
    }
    if ((flags.has("autoscale") || flags.has("resize")) &&
        rcfg.cluster.policy == "energy-min") {
      std::fprintf(stderr,
                   "error: --policy=energy-min manages sleep itself and "
                   "cannot share the fleet with the autoscaler; pick "
                   "another --policy (see --list-policies)\n");
      return 1;
    }
    if (flags.has("autoscale")) {
      const std::optional<migrate::AutoscaleConfig> as =
          migrate::parse_autoscale_spec(rcfg.cluster.autoscale, &elastic_err);
      if (as.has_value() &&
          as->min_nodes > static_cast<int>(rcfg.cluster.specs.size())) {
        std::fprintf(stderr,
                     "error: --autoscale MIN=%d exceeds the fleet's %zu "
                     "node(s)\n",
                     as->min_nodes, rcfg.cluster.specs.size());
        return 1;
      }
    }
    if (flags.has("resize")) {
      const std::optional<std::vector<migrate::ResizeStep>> steps =
          migrate::parse_resize_spec(rcfg.cluster.resize, &elastic_err);
      if (steps.has_value()) {
        for (const migrate::ResizeStep& s : *steps) {
          if (s.target > static_cast<int>(rcfg.cluster.specs.size())) {
            std::fprintf(stderr,
                         "error: --resize targets %d node(s) but the "
                         "cluster has %zu\n",
                         s.target, rcfg.cluster.specs.size());
            return 1;
          }
        }
      }
    }
  }

  if (!multi && !harness::runtime_supports(wl, rt, wcfg)) {
    std::fprintf(stderr, "error: %s cannot run %s as configured\n",
                 rt.c_str(), wl.c_str());
    return 1;
  }

  const bool want_metrics = flags.has("metrics");
  const std::string metrics_path = flags.get("metrics");
  const bool want_profile = flags.has("profile");
  const std::string profile_path = flags.get("profile", "profile.json");
  const bool want_trace = flags.has("trace");
  const std::string trace_path = flags.get("trace");
  if (want_trace && trace_path.empty()) {
    std::fprintf(stderr, "error: --trace needs a path (--trace=out.csv)\n");
    return 1;
  }
  const std::string trace_format = flags.get("trace-format", "csv");
  if (trace_format != "csv" && trace_format != "chrome") {
    std::fprintf(stderr, "error: --trace-format must be csv or chrome\n");
    return 1;
  }
  const bool want_spans = flags.has("trace-spans");
  const std::string spans_path = flags.get("trace-spans");
  if (want_spans && spans_path.empty()) {
    std::fprintf(stderr,
                 "error: --trace-spans needs a path "
                 "(--trace-spans=spans.json)\n");
    return 1;
  }
  const std::int64_t period_us = flags.get_int("metrics-period", 20);
  if (period_us <= 0) {
    std::fprintf(stderr, "error: --metrics-period must be positive\n");
    return 1;
  }

  if (multi) {
    if (want_metrics || want_profile || want_trace) {
      std::fprintf(stderr,
                   "error: --metrics/--profile/--trace need a single "
                   "--runtime\n");
      return 1;
    }
    // One shared config; every scheme runs under the same engine Session
    // parameters. Cluster (if listed) uses its defaults: one device of the
    // configured spec.
    rcfg.cluster.seed = wcfg.seed;
    std::printf("workload   %s  (%d tasks, %d threads/task%s%s)\n", wl.c_str(),
                wcfg.num_tasks, wcfg.threads_per_task,
                wcfg.irregular_sizes ? ", irregular sizes" : "",
                rcfg.include_data_copies ? "" : ", no data copies");
    std::printf("mode       %s\n\n",
                rcfg.mode == gpu::ExecMode::Compute ? "compute (verified)"
                                                    : "model");
    harness::Table table({"runtime", "time", "speedup", "occupancy",
                          "p50 latency", "p99 latency"});
    double base_time = 0.0;  // first supported runtime anchors the speedups
    std::string base_name;
    for (const std::string& r : rts) {
      if (!harness::runtime_supports(wl, r, wcfg)) {
        table.add_row({r, "n/a", "n/a", "n/a", "n/a", "n/a"});
        continue;
      }
      const harness::Measurement m = harness::run_experiment(wl, r, wcfg, rcfg);
      const auto t = static_cast<double>(m.result.elapsed);
      if (base_time == 0.0) {
        base_time = t;
        base_name = r;
      }
      std::string p50 = "-";
      std::string p99 = "-";
      if (!m.result.task_latency_us.empty()) {
        p50 = harness::fmt_us(percentile(m.result.task_latency_us, 50));
        p99 = harness::fmt_us(percentile(m.result.task_latency_us, 99));
      }
      table.add_row({r, harness::fmt_ms(m.result.elapsed),
                     harness::fmt_x(base_time / t),
                     harness::fmt_pct(m.result.occupancy), p50, p99});
    }
    table.print(std::cout);
    if (!base_name.empty()) {
      std::printf("\nspeedups are relative to %s\n", base_name.c_str());
    }
    return 0;
  }

  // Fail fast on unwritable output paths BEFORE the run starts: a bad path
  // must cost an exit 2 up front, not a discarded multi-second simulation.
  const auto open_output = [](const std::string& path,
                              const char* flag) -> std::ofstream {
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "error: %s: cannot open output path '%s'\n", flag,
                   path.c_str());
      std::exit(2);
    }
    return out;
  };
  std::optional<std::ofstream> metrics_out;
  std::optional<std::ofstream> profile_out;
  std::optional<std::ofstream> trace_out;
  std::optional<std::ofstream> spans_out;
  if (want_metrics && !metrics_path.empty()) {
    metrics_out = open_output(metrics_path, "--metrics");
  }
  if (want_profile) profile_out = open_output(profile_path, "--profile");
  if (want_trace) trace_out = open_output(trace_path, "--trace");
  if (want_spans) spans_out = open_output(spans_path, "--trace-spans");

  obs::CollectorConfig ccfg;
  ccfg.sample_period = sim::microseconds(static_cast<double>(period_us));
  ccfg.timeline = want_profile || (want_trace && !pagoda_rt);
  ccfg.trace = want_trace && pagoda_rt;
  ccfg.spans = want_spans;
  obs::Collector collector(ccfg);
  if (want_metrics || want_profile || want_trace || want_spans) {
    rcfg.collector = &collector;
  }

  const harness::Measurement m = harness::run_experiment(wl, rt, wcfg, rcfg);

  std::printf("workload   %s  (%d tasks, %d threads/task%s%s)\n", wl.c_str(),
              wcfg.num_tasks, wcfg.threads_per_task,
              wcfg.irregular_sizes ? ", irregular sizes" : "",
              rcfg.include_data_copies ? "" : ", no data copies");
  std::printf("runtime    %s\n", rt.c_str());
  if (want_cluster) {
    std::printf("cluster    %zu GPU(s), policy %s, arrival %s, sched %s\n",
                rcfg.cluster.specs.size(), rcfg.cluster.policy.c_str(),
                rcfg.cluster.arrival.c_str(),
                std::string(sched::to_string(rcfg.cluster.sched.kind)).c_str());
    if (rcfg.cluster.global_queue || rcfg.cluster.sim_threads > 1) {
      std::printf("sim-core   %s, %d worker thread(s)\n",
                  rcfg.cluster.global_queue ? "global" : "sharded",
                  rcfg.cluster.sim_threads);
    }
    if (!rcfg.cluster.power.empty()) {
      std::printf("power      spec %s, governor %s", rcfg.cluster.power.c_str(),
                  rcfg.cluster.governor.c_str());
      if (rcfg.cluster.power_cap_watts > 0.0) {
        std::printf(", cap %.1f W", rcfg.cluster.power_cap_watts);
      }
      std::printf("\n");
    }
    if (rcfg.cluster.migrate) {
      std::printf("elastic    migrate on");
      if (!rcfg.cluster.autoscale.empty()) {
        std::printf(", autoscale %s", rcfg.cluster.autoscale.c_str());
      }
      if (!rcfg.cluster.resize.empty()) {
        std::printf(", resize %s", rcfg.cluster.resize.c_str());
      }
      std::printf("\n");
    }
  }
  std::printf("mode       %s\n",
              rcfg.mode == gpu::ExecMode::Compute ? "compute (verified)"
                                                  : "model");
  std::printf("time       %.3f ms\n", m.result.elapsed_ms());
  std::printf("occupancy  %.1f%%\n", m.result.occupancy * 100.0);
  std::printf("PCIe wire  H2D %.2f ms busy, D2H %.2f ms busy\n",
              sim::to_milliseconds(m.result.h2d_wire_busy),
              sim::to_milliseconds(m.result.d2h_wire_busy));
  if (!m.result.task_latency_us.empty()) {
    std::printf("latency    mean %.1f us   p50 %.1f us   p99 %.1f us\n",
                arithmetic_mean(m.result.task_latency_us),
                percentile(m.result.task_latency_us, 50),
                percentile(m.result.task_latency_us, 99));
  }

  if (want_metrics) {
    if (metrics_path.empty()) {
      std::printf("\n");
      m.metrics.write_text(std::cout);
    } else {
      m.metrics.write_json(*metrics_out);
      std::printf("metrics    -> %s\n", metrics_path.c_str());
    }
  }
  if (want_profile) {
    collector.timeline().write_chrome_trace(*profile_out);
    std::printf("profile    %zu spans, %zu counter samples -> %s\n",
                collector.timeline().num_spans(),
                collector.timeline().num_counter_samples(),
                profile_path.c_str());
    if (collector.timeline().dropped_events() > 0) {
      std::printf("profile    WARNING: %lld events dropped at the buffer "
                  "cap\n",
                  static_cast<long long>(
                      collector.timeline().dropped_events()));
    }
  }
  if (want_trace) {
    if (pagoda_rt) {
      if (trace_format == "chrome") {
        collector.trace().write_chrome_trace(*trace_out);
      } else {
        collector.trace().write_csv(*trace_out);
      }
      std::printf("trace      %zu events -> %s\n",
                  collector.trace().events().size(), trace_path.c_str());
    } else {
      if (trace_format == "chrome") {
        collector.timeline().write_chrome_trace(*trace_out);
      } else {
        collector.timeline().write_csv(*trace_out);
      }
      std::printf("trace      %zu spans -> %s\n",
                  collector.timeline().num_spans(), trace_path.c_str());
    }
  }
  if (want_spans) {
    const obs::RequestTracer& tracer = collector.request_tracer();
    tracer.write_json(*spans_out);
    std::printf("spans      %zu requests, %zu dropped -> %s\n",
                tracer.records().size(), tracer.drops().size(),
                spans_path.c_str());
  }
  return 0;
}
