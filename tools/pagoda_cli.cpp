// pagoda_cli: run any (workload x runtime) experiment from the command line.
//
//   pagoda_cli --workload=MM --runtime=Pagoda --tasks=4096 --threads=128
//   pagoda_cli --workload=3DES --runtime=HyperQ --no-copies
//   pagoda_cli --workload=MB --runtime=Pagoda --compute     # verify outputs
//   pagoda_cli --workload=MM --runtime=Pagoda --trace=out.csv
//   pagoda_cli --workload=MM --runtime=GeMTC --metrics
//   pagoda_cli --workload=MM --runtime=Pagoda --metrics=metrics.json
//   pagoda_cli --workload=MM --runtime=HyperQ --profile=profile.json
//   pagoda_cli --list
//
// Prints end-to-end time, occupancy, wire utilization and per-task latency
// percentiles. `--metrics` adds the full observability snapshot (text report
// to stdout, or the stable JSON form when given a path); `--profile` writes
// a Chrome/Perfetto trace-event file with task spans, PCIe transfers, kernel
// grids and counter tracks; `--trace` dumps the raw event trace for ANY
// runtime — the Pagoda protocol trace for Pagoda runtimes, the generic
// timeline for the rest.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "baselines/factories.h"
#include "common/stats.h"
#include "harness/calibration.h"
#include "harness/experiment.h"
#include "harness/flags.h"
#include "obs/collector.h"
#include "pagoda/trace.h"

using namespace pagoda;
using harness::Flags;

namespace {

int list_options() {
  std::printf("workloads: ");
  for (const auto wl : workloads::all_workload_names()) {
    std::printf("%s ", std::string(wl).c_str());
  }
  std::printf("\nruntimes:  Sequential PThreads HyperQ GeMTC Fusion Pagoda "
              "PagodaBatching\n");
  std::printf(
      "flags:     --tasks=N --threads=N --blocks=N --seed=N --input=N\n"
      "           --irregular --dynamic-threads --no-shmem --no-copies\n"
      "           --compute --batch=N --rows=N --two-copy\n"
      "           --metrics[=out.json] --metrics-period=US\n"
      "           --profile[=out.json] --trace=out.csv "
      "--trace-format=csv|chrome\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::string bad = flags.unknown(
      {"list", "help", "workload", "runtime", "tasks", "threads", "seed",
       "input", "blocks", "irregular", "dynamic-threads", "no-shmem",
       "compute", "no-copies", "batch", "rows", "two-copy", "trace",
       "trace-format", "metrics", "metrics-period", "profile"});
  if (!bad.empty()) {
    std::fprintf(stderr, "error: unknown argument '%s' (try --help)\n",
                 bad.c_str());
    return 1;
  }
  if (flags.has("list") || flags.has("help")) return list_options();

  const std::string wl = flags.get("workload", "MM");
  const std::string rt = flags.get("runtime", "Pagoda");
  const bool pagoda_rt = rt == "Pagoda" || rt == "PagodaBatching";

  workloads::WorkloadConfig wcfg;
  wcfg.num_tasks = static_cast<int>(flags.get_int("tasks", 4096));
  wcfg.threads_per_task = static_cast<int>(flags.get_int("threads", 128));
  wcfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 0x9A60DA));
  wcfg.input_scale = static_cast<int>(flags.get_int("input", 0));
  wcfg.blocks_per_task = static_cast<int>(flags.get_int("blocks", 1));
  wcfg.irregular_sizes = flags.has("irregular");
  wcfg.dynamic_threads = flags.has("dynamic-threads");
  wcfg.use_shared_memory = !flags.has("no-shmem");

  baselines::RunConfig rcfg = harness::paper_platform();
  rcfg.mode = flags.has("compute") ? gpu::ExecMode::Compute
                                   : gpu::ExecMode::Model;
  rcfg.include_data_copies = !flags.has("no-copies");
  rcfg.collect_latencies = true;
  rcfg.batch_size = static_cast<int>(flags.get_int("batch", 0));
  rcfg.pagoda.rows_per_column =
      static_cast<int>(flags.get_int("rows", 32));
  rcfg.pagoda.two_copy_spawn = flags.has("two-copy");

  if (!harness::runtime_supports(wl, rt, wcfg)) {
    std::fprintf(stderr, "error: %s cannot run %s as configured\n",
                 rt.c_str(), wl.c_str());
    return 1;
  }

  const bool want_metrics = flags.has("metrics");
  const std::string metrics_path = flags.get("metrics");
  const bool want_profile = flags.has("profile");
  const std::string profile_path = flags.get("profile", "profile.json");
  const bool want_trace = flags.has("trace");
  const std::string trace_path = flags.get("trace");
  if (want_trace && trace_path.empty()) {
    std::fprintf(stderr, "error: --trace needs a path (--trace=out.csv)\n");
    return 1;
  }
  const std::string trace_format = flags.get("trace-format", "csv");
  if (trace_format != "csv" && trace_format != "chrome") {
    std::fprintf(stderr, "error: --trace-format must be csv or chrome\n");
    return 1;
  }
  const std::int64_t period_us = flags.get_int("metrics-period", 20);
  if (period_us <= 0) {
    std::fprintf(stderr, "error: --metrics-period must be positive\n");
    return 1;
  }

  obs::CollectorConfig ccfg;
  ccfg.sample_period = sim::microseconds(static_cast<double>(period_us));
  ccfg.timeline = want_profile || (want_trace && !pagoda_rt);
  ccfg.trace = want_trace && pagoda_rt;
  obs::Collector collector(ccfg);
  if (want_metrics || want_profile || want_trace) rcfg.collector = &collector;

  const harness::Measurement m = harness::run_experiment(wl, rt, wcfg, rcfg);

  std::printf("workload   %s  (%d tasks, %d threads/task%s%s)\n", wl.c_str(),
              wcfg.num_tasks, wcfg.threads_per_task,
              wcfg.irregular_sizes ? ", irregular sizes" : "",
              rcfg.include_data_copies ? "" : ", no data copies");
  std::printf("runtime    %s\n", rt.c_str());
  std::printf("mode       %s\n",
              rcfg.mode == gpu::ExecMode::Compute ? "compute (verified)"
                                                  : "model");
  std::printf("time       %.3f ms\n", m.result.elapsed_ms());
  std::printf("occupancy  %.1f%%\n", m.result.occupancy * 100.0);
  std::printf("PCIe wire  H2D %.2f ms busy, D2H %.2f ms busy\n",
              sim::to_milliseconds(m.result.h2d_wire_busy),
              sim::to_milliseconds(m.result.d2h_wire_busy));
  if (!m.result.task_latency_us.empty()) {
    std::printf("latency    mean %.1f us   p50 %.1f us   p99 %.1f us\n",
                arithmetic_mean(m.result.task_latency_us),
                percentile(m.result.task_latency_us, 50),
                percentile(m.result.task_latency_us, 99));
  }

  if (want_metrics) {
    if (metrics_path.empty()) {
      std::printf("\n");
      m.metrics.write_text(std::cout);
    } else {
      std::ofstream out(metrics_path);
      m.metrics.write_json(out);
      std::printf("metrics    -> %s\n", metrics_path.c_str());
    }
  }
  if (want_profile) {
    std::ofstream out(profile_path);
    collector.timeline().write_chrome_trace(out);
    std::printf("profile    %zu spans, %zu counter samples -> %s\n",
                collector.timeline().num_spans(),
                collector.timeline().num_counter_samples(),
                profile_path.c_str());
  }
  if (want_trace) {
    std::ofstream out(trace_path);
    if (pagoda_rt) {
      if (trace_format == "chrome") {
        collector.trace().write_chrome_trace(out);
      } else {
        collector.trace().write_csv(out);
      }
      std::printf("trace      %zu events -> %s\n",
                  collector.trace().events().size(), trace_path.c_str());
    } else {
      if (trace_format == "chrome") {
        collector.timeline().write_chrome_trace(out);
      } else {
        collector.timeline().write_csv(out);
      }
      std::printf("trace      %zu spans -> %s\n",
                  collector.timeline().num_spans(), trace_path.c_str());
    }
  }
  return 0;
}
