#!/usr/bin/env bash
# Full local verification: a Release build + test run, then an
# address+undefined sanitizer build + test run. Mirrors what CI expects.
#
#   tools/check.sh            # both passes
#   tools/check.sh --fast     # Release pass only
#   PAGODA_SANITIZE="thread" tools/check.sh   # override the sanitizer list
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)
SANITIZERS="${PAGODA_SANITIZE:-address;undefined}"

run_pass() {
  local dir="$1"
  shift
  echo "==> configure ${dir} ($*)"
  cmake -B "${dir}" -S . "$@" >/dev/null
  echo "==> build ${dir}"
  cmake --build "${dir}" -j "${JOBS}"
  echo "==> test ${dir}"
  (cd "${dir}" && ctest --output-on-failure -j "${JOBS}")
}

run_pass build-release -DCMAKE_BUILD_TYPE=Release -DPAGODA_WERROR=ON

if [[ "${1:-}" != "--fast" ]]; then
  run_pass build-asan \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    "-DPAGODA_SANITIZE=${SANITIZERS}"
fi

echo "==> all checks passed"
