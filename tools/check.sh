#!/usr/bin/env bash
# Full local verification: a Release build + test run, then an
# address+undefined sanitizer build + test run. Mirrors what CI expects.
#
#   tools/check.sh            # both passes
#   tools/check.sh --fast     # Release pass only
#   PAGODA_SANITIZE="thread" tools/check.sh   # override the sanitizer list
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)
SANITIZERS="${PAGODA_SANITIZE:-address;undefined}"

run_pass() {
  local dir="$1"
  shift
  echo "==> configure ${dir} ($*)"
  cmake -B "${dir}" -S . "$@" >/dev/null
  echo "==> build ${dir}"
  cmake --build "${dir}" -j "${JOBS}"
  echo "==> test ${dir}"
  (cd "${dir}" && ctest --output-on-failure -j "${JOBS}")
}

cluster_smoke() {
  local dir="$1"
  echo "==> cluster smoke ${dir}"
  "${dir}/tools/pagoda_cli" --workload=MM --tasks=512 --gpus=2 \
      --policy=least-loaded --arrival=poisson:150000 --slo-us=5000 >/dev/null
  # Bad cluster flag values must fail fast and print the valid choices.
  if "${dir}/tools/pagoda_cli" --workload=MM --gpus=2 --policy=bogus \
      >/dev/null 2>&1; then
    echo "error: bad --policy unexpectedly accepted" >&2
    exit 1
  fi
  # pagoda_cli exits nonzero here by design; || true keeps pipefail happy.
  ("${dir}/tools/pagoda_cli" --workload=MM --gpus=2 --policy=bogus 2>&1 || true) |
    grep -q "invalid value for --policy.*round-robin"
  ("${dir}/tools/pagoda_cli" --workload=MM --gpus=2 --arrival=sawtooth 2>&1 || true) |
    grep -q "poisson:RATE"
}

qos_smoke() {
  local dir="$1"
  echo "==> qos smoke ${dir}"
  # Every policy must drive the cluster end-to-end.
  for pol in fifo priority edf wfq; do
    "${dir}/tools/pagoda_cli" --workload=MM --tasks=256 --gpus=2 \
        --policy=least-loaded --arrival=poisson:150000 --slo-us=5000 \
        --sched-policy="${pol}" >/dev/null
  done
  # Per-class sched.* metrics must appear once any QoS flag arms them.
  # (Capture then grep: grep -q closing the pipe early would SIGPIPE the
  # CLI under pipefail.)
  local out
  out=$("${dir}/tools/pagoda_cli" --workload=MM --tasks=256 --gpus=1 \
      --sched-policy=priority --class=interactive --metrics)
  grep -q "sched.interactive.completed" <<<"${out}"
  # Single-device Pagoda takes the same flags (spawn + claim order).
  "${dir}/tools/pagoda_cli" --workload=MM --tasks=256 --sched-policy=edf \
      >/dev/null
  "${dir}/tools/pagoda_cli" --workload=MM --tasks=256 --sched-policy=wfq \
      --weights=5,2,1 >/dev/null
  out=$("${dir}/tools/pagoda_cli" --list-workloads)
  grep -q "SLUD" <<<"${out}"
  # Strict validation: bad values fail fast and print the choices.
  if "${dir}/tools/pagoda_cli" --workload=MM --sched-policy=sjf \
      >/dev/null 2>&1; then
    echo "error: bad --sched-policy unexpectedly accepted" >&2
    exit 1
  fi
  ("${dir}/tools/pagoda_cli" --workload=MM --sched-policy=sjf 2>&1 || true) |
    grep -q "invalid value for --sched-policy"
  if "${dir}/tools/pagoda_cli" --workload=MM --sched-policy=edf \
      --weights=1,2,3 >/dev/null 2>&1; then
    echo "error: --weights without wfq unexpectedly accepted" >&2
    exit 1
  fi
  if "${dir}/tools/pagoda_cli" --workload=MM --sched-policy=wfq \
      --weights=1,0,1 >/dev/null 2>&1; then
    echo "error: non-positive --weights unexpectedly accepted" >&2
    exit 1
  fi
}

fault_smoke() {
  local dir="$1"
  echo "==> fault-injection smoke ${dir}"
  # A nonzero plan — 5% task faults, a wedge source, and a mid-run node
  # crash with recovery — must complete or deliberately shed every admitted
  # request exactly once (the dispatcher CHECKs its ledger on drain).
  "${dir}/tools/pagoda_cli" --workload=MM --tasks=512 --gpus=2 \
      --policy=least-loaded --arrival=poisson:150000 --slo-us=5000 \
      --faults=task:0.05,wedge:0.01,crash:1:2000:3000 \
      --task-timeout-us=3000 --metrics >/dev/null
  # Compute mode verifies retried tasks against the CPU references.
  "${dir}/tools/pagoda_cli" --workload=MM --tasks=128 --gpus=2 --compute \
      --faults=task:0.1,xfer:0.05 --task-timeout-us=3000 >/dev/null
  # Bad fault specs must fail fast and print the grammar.
  if "${dir}/tools/pagoda_cli" --workload=MM --gpus=2 --faults=bogus:1 \
      >/dev/null 2>&1; then
    echo "error: bad --faults unexpectedly accepted" >&2
    exit 1
  fi
  ("${dir}/tools/pagoda_cli" --workload=MM --gpus=2 --faults=bogus:1 2>&1 || true) |
    grep -q "valid forms"
  # Wedge/crash plans without a task deadline are unrecoverable: rejected.
  if "${dir}/tools/pagoda_cli" --workload=MM --gpus=2 --faults=wedge:0.1 \
      >/dev/null 2>&1; then
    echo "error: wedge plan without --task-timeout-us unexpectedly accepted" >&2
    exit 1
  fi
  # An explicit --slo-us=0 is ambiguous and must be refused.
  if "${dir}/tools/pagoda_cli" --workload=MM --gpus=2 --slo-us=0 \
      >/dev/null 2>&1; then
    echo "error: --slo-us=0 unexpectedly accepted" >&2
    exit 1
  fi
}

trace_smoke() {
  local dir="$1"
  echo "==> trace smoke ${dir}"
  # End-to-end span pipeline: a faulty cluster run dumps spans, the offline
  # analyzer re-checks the bucket-sum invariant and prints per-class
  # attribution; the dump must be byte-identical across reruns.
  "${dir}/tools/pagoda_cli" --workload=MM --tasks=512 --gpus=2 \
      --policy=least-loaded --arrival=poisson:150000 --slo-us=5000 \
      --faults=task:0.05,xfer:0.02 --trace-spans=/tmp/pagoda_spans_a.json \
      >/dev/null
  "${dir}/tools/pagoda_cli" --workload=MM --tasks=512 --gpus=2 \
      --policy=least-loaded --arrival=poisson:150000 --slo-us=5000 \
      --faults=task:0.05,xfer:0.02 --trace-spans=/tmp/pagoda_spans_b.json \
      >/dev/null
  cmp /tmp/pagoda_spans_a.json /tmp/pagoda_spans_b.json
  local out
  out=$("${dir}/tools/trace_report" --in=/tmp/pagoda_spans_a.json --top=3)
  grep -q "class=" <<<"${out}"          # non-empty attribution table
  grep -q "critical path:" <<<"${out}"  # top-K slowest with paths
  rm -f /tmp/pagoda_spans_a.json /tmp/pagoda_spans_b.json
  # Unwritable output paths must fail fast with exit 2, BEFORE the run.
  local rc=0
  "${dir}/tools/pagoda_cli" --workload=MM --tasks=32 --gpus=2 \
      --trace-spans=/nonexistent-dir/x.json >/dev/null 2>&1 || rc=$?
  if [[ "${rc}" != 2 ]]; then
    echo "error: unwritable --trace-spans path exited ${rc}, want 2" >&2
    exit 1
  fi
  rc=0
  "${dir}/tools/pagoda_cli" --workload=MM --tasks=32 \
      --metrics=/nonexistent-dir/x.json >/dev/null 2>&1 || rc=$?
  if [[ "${rc}" != 2 ]]; then
    echo "error: unwritable --metrics path exited ${rc}, want 2" >&2
    exit 1
  fi
}

fleet_smoke() {
  local dir="$1"
  echo "==> fleet smoke ${dir}"
  # A 64-node fleet must run end-to-end on the sharded core, sequential and
  # threaded, with identical virtual-time output (the time/latency lines).
  local seq par
  seq=$("${dir}/tools/pagoda_cli" --workload=MM --tasks=256 --gpus=64 \
      --arrival=poisson:2000000 --threads=1 | grep -E "^(time|latency)")
  par=$("${dir}/tools/pagoda_cli" --workload=MM --tasks=256 --gpus=64 \
      --arrival=poisson:2000000 --threads=2 2>/dev/null |
      grep -E "^(time|latency)")
  if [[ "${seq}" != "${par}" ]]; then
    echo "error: --threads=2 changed the virtual-time outcome:" >&2
    printf '%s\n--- vs ---\n%s\n' "${seq}" "${par}" >&2
    exit 1
  fi
  # Strict validation, same style as --policy/--gpus.
  if "${dir}/tools/pagoda_cli" --workload=MM --gpus=2 --threads=0 \
      >/dev/null 2>&1; then
    echo "error: --threads=0 unexpectedly accepted" >&2
    exit 1
  fi
  ("${dir}/tools/pagoda_cli" --workload=MM --gpus=2 --threads=0 2>&1 || true) |
    grep -q "threads must be >= 1"
  # Stale scripts from when --threads meant threads-per-task (now
  # --task-threads) must fail loudly, not spawn a workload-sized pool.
  if "${dir}/tools/pagoda_cli" --workload=MM --gpus=2 --threads=4096 \
      >/dev/null 2>&1; then
    echo "error: workload-sized --threads unexpectedly accepted" >&2
    exit 1
  fi
  ("${dir}/tools/pagoda_cli" --workload=MM --gpus=2 --threads=4096 2>&1 || true) |
    grep -q -- "--task-threads"
  if "${dir}/tools/pagoda_cli" --workload=MM --runtime=Pagoda --threads=4 \
      >/dev/null 2>&1; then
    echo "error: --threads outside the Cluster runtime unexpectedly accepted" >&2
    exit 1
  fi
  if "${dir}/tools/pagoda_cli" --workload=MM --gpus=2 --sim-core=global \
      --threads=4 >/dev/null 2>&1; then
    echo "error: --sim-core=global with a worker pool unexpectedly accepted" >&2
    exit 1
  fi
  ("${dir}/tools/pagoda_cli" --workload=MM --gpus=2 --sim-core=bogus 2>&1 || true) |
    grep -q "invalid value for --sim-core"
  # The simulation-core catalog is part of --list-policies.
  ("${dir}/tools/pagoda_cli" --list-policies) | grep -q "sim-core"
}

power_smoke() {
  local dir="$1"
  echo "==> power smoke ${dir}"
  # Metering only: default spec + static governor at floor 0 keeps timing
  # identical to a power-off run while exporting the energy account.
  local out
  out=$("${dir}/tools/pagoda_cli" --workload=MM --tasks=512 --gpus=2 \
      --policy=least-loaded --arrival=poisson:150000 --slo-us=5000 \
      --power=default --metrics)
  grep -q "power.fleet.energy_j" <<<"${out}"
  # The full strategy: energy-min packing + dvfs + S-state sleep on diurnal
  # traffic; the governor must park the surplus node during troughs.
  out=$("${dir}/tools/pagoda_cli" --workload=MM --tasks=2048 --gpus=2 \
      --policy=energy-min --arrival=diurnal:800000:8:20000 --slo-us=5000 \
      --power=default:floor=3 --governor=dvfs --metrics)
  grep -q "power.governor.nodes_slept" <<<"${out}"
  # powercap: the governor and the power-cap placement share the budget.
  "${dir}/tools/pagoda_cli" --workload=MM --tasks=512 --gpus=2 \
      --policy=power-cap --arrival=poisson:150000 --slo-us=5000 \
      --power=default:floor=3 --governor=powercap --power-cap-watts=150 \
      >/dev/null
  # --list-policies enumerates placements, sched policies and governors.
  out=$("${dir}/tools/pagoda_cli" --list-policies)
  grep -q "energy-min" <<<"${out}"
  grep -q "powercap" <<<"${out}"
  grep -q "wfq" <<<"${out}"
  # Strict validation: bad specs fail fast and point at the catalog.
  if "${dir}/tools/pagoda_cli" --workload=MM --gpus=2 --power=bogus \
      >/dev/null 2>&1; then
    echo "error: bad --power unexpectedly accepted" >&2
    exit 1
  fi
  ("${dir}/tools/pagoda_cli" --workload=MM --gpus=2 --power=bogus 2>&1 || true) |
    grep -q "default\[:floor=N\]"
  if "${dir}/tools/pagoda_cli" --workload=MM --gpus=2 --governor=dvfs \
      >/dev/null 2>&1; then
    echo "error: --governor without --power unexpectedly accepted" >&2
    exit 1
  fi
  if "${dir}/tools/pagoda_cli" --workload=MM --gpus=2 --power=default \
      --power-cap-watts=100 >/dev/null 2>&1; then
    echo "error: --power-cap-watts without an enforcer unexpectedly accepted" >&2
    exit 1
  fi
  ("${dir}/tools/pagoda_cli" --workload=MM --gpus=2 --power=default \
      --governor=bogus 2>&1 || true) | grep -q "list-policies"
}

migrate_smoke() {
  local dir="$1"
  echo "==> migrate smoke ${dir}"
  # Migrate-not-shed + autoscaler end-to-end: the utilization resizer must
  # sleep the surplus, checkpoint whatever the drains catch, and the
  # migrate.* ledger must export.
  local out
  out=$("${dir}/tools/pagoda_cli" --workload=MM --tasks=2048 --gpus=4 \
      --policy=least-outstanding --arrival=poisson:150000 --slo-us=5000 \
      --migrate --power=default --autoscale=0.6 --metrics)
  grep -q "migrate.checkpoints" <<<"${out}"
  grep -q "migrate.autoscale.nodes_slept" <<<"${out}"
  # An explicit rolling-resize plan must fire both steps.
  out=$("${dir}/tools/pagoda_cli" --workload=MM --tasks=2048 --gpus=4 \
      --policy=least-outstanding --arrival=poisson:150000 --slo-us=5000 \
      --migrate --power=default --resize=4000:2,9000:4 --metrics)
  grep -qE "migrate\.autoscale\.resize_events +2" <<<"${out}"
  # Strict validation: the elastic flags need their prerequisite planes.
  if "${dir}/tools/pagoda_cli" --workload=MM --gpus=2 --autoscale=0.6 \
      >/dev/null 2>&1; then
    echo "error: --autoscale without --migrate unexpectedly accepted" >&2
    exit 1
  fi
  ("${dir}/tools/pagoda_cli" --workload=MM --gpus=2 --autoscale=0.6 2>&1 || true) |
    grep -q -- "--migrate"
  if "${dir}/tools/pagoda_cli" --workload=MM --gpus=2 --migrate \
      --autoscale=0.6 >/dev/null 2>&1; then
    echo "error: --autoscale without --power unexpectedly accepted" >&2
    exit 1
  fi
  if "${dir}/tools/pagoda_cli" --workload=MM --gpus=2 --migrate \
      --power=default --autoscale=1.5 >/dev/null 2>&1; then
    echo "error: bad --autoscale spec unexpectedly accepted" >&2
    exit 1
  fi
  if "${dir}/tools/pagoda_cli" --workload=MM --gpus=2 --migrate \
      --power=default --resize=9000:2,4000:4 >/dev/null 2>&1; then
    echo "error: non-increasing --resize plan unexpectedly accepted" >&2
    exit 1
  fi
  if "${dir}/tools/pagoda_cli" --workload=MM --gpus=2 --migrate \
      --power=default --policy=energy-min --autoscale=0.6 \
      >/dev/null 2>&1; then
    echo "error: --autoscale with energy-min unexpectedly accepted" >&2
    exit 1
  fi
  # The elastic flags are part of the --list-policies catalog.
  ("${dir}/tools/pagoda_cli" --list-policies) | grep -q -- "--autoscale=SPEC"
}

vres_smoke() {
  local dir="$1"
  echo "==> vres smoke ${dir}"
  # Oversubscribed single-device run: the vres + fragmentation planes must
  # export, and compute mode must still verify against the CPU references.
  local out
  out=$("${dir}/tools/pagoda_cli" --workload=DCT --tasks=256 --irregular \
      --oversub=1.5 --metrics)
  grep -q "pagoda.vres.spills" <<<"${out}"
  grep -q "pagoda.shmem.external_frag" <<<"${out}"
  "${dir}/tools/pagoda_cli" --workload=DCT --tasks=128 --irregular \
      --oversub=1.5 --compute >/dev/null
  # --oversub=1.0 keeps the plane dark: no vres keys may appear (the
  # byte-identical-by-construction contract).
  out=$("${dir}/tools/pagoda_cli" --workload=DCT --tasks=256 --irregular \
      --metrics)
  if grep -q "pagoda.vres" <<<"${out}"; then
    echo "error: --oversub=1 unexpectedly exported vres metrics" >&2
    exit 1
  fi
  # Strict validation: undersubscription and garbage fail fast.
  if "${dir}/tools/pagoda_cli" --workload=DCT --oversub=0.5 \
      >/dev/null 2>&1; then
    echo "error: --oversub=0.5 unexpectedly accepted" >&2
    exit 1
  fi
  ("${dir}/tools/pagoda_cli" --workload=DCT --oversub=0.5 2>&1 || true) |
    grep -q -- "--oversub must be a finite factor >= 1.0"
  if "${dir}/tools/pagoda_cli" --workload=DCT --oversub=abc \
      >/dev/null 2>&1; then
    echo "error: --oversub=abc unexpectedly accepted" >&2
    exit 1
  fi
  ("${dir}/tools/pagoda_cli" --workload=DCT --oversub=abc 2>&1 || true) |
    grep -q "invalid value for --oversub"
  # The footprint columns predict which workloads oversubscription helps.
  ("${dir}/tools/pagoda_cli" --list-workloads) | grep -q "shmem/blk"
}

vres_grep_clean() {
  # The virtual plane owns physical resources: only src/pagoda (the
  # backend) and src/vres (the facade) may name the buddy allocator or
  # construct a TaskTable. micro_components is the one sanctioned
  # exception — it benchmarks the physical backend in isolation.
  echo "==> vres layering grep"
  local hits
  hits=$(grep -rnE "\bShmemAllocator\b|\bTaskTable [a-z_]+\(" \
      --include="*.cpp" --include="*.h" src bench tools examples |
      grep -v "^src/pagoda/\|^src/vres/\|^bench/micro_components.cpp" || true)
  if [[ -n "${hits}" ]]; then
    echo "error: physical resource structures touched outside src/pagoda + src/vres:" >&2
    echo "${hits}" >&2
    exit 1
  fi
}

power_grep_clean() {
  # Only src/power (the governor included) may move P/C/S states: the
  # mutator verbs must not appear anywhere else in the production tree.
  echo "==> power layering grep"
  local hits
  hits=$(grep -rnE "\b(set_p_state|step_c_deeper|enter_sleep|begin_wake)\b" \
      --include="*.cpp" --include="*.h" src bench tools examples |
      grep -v "^src/power/" || true)
  if [[ -n "${hits}" ]]; then
    echo "error: power-state mutation outside src/power:" >&2
    echo "${hits}" >&2
    exit 1
  fi
}

fault_grep_clean() {
  # Recovery paths must never throw: failures flow through
  # fault::FailureCause values so a fault can never unwind the dispatcher
  # mid-ledger. Comment mentions of the word are fine; throw *statements*
  # are not.
  echo "==> fault no-throw grep"
  local hits
  hits=$(grep -rnE "\bthrow\b" --include="*.cpp" --include="*.h" \
      src/fault src/cluster |
      grep -vE "^[^:]+:[0-9]+: *//" | grep -vE "//.*\bthrow\b" || true)
  if [[ -n "${hits}" ]]; then
    echo "error: naked throw in fault/recovery paths:" >&2
    echo "${hits}" >&2
    exit 1
  fi
}

sched_grep_clean() {
  # The sched layer owns every ordering decision: admission queues must be
  # sched::ReadyQueue (the raw counting semaphore has no policy hook), and
  # nothing outside src/sched may order on the QoS tags directly.
  echo "==> sched layering grep"
  local hits
  hits=$(grep -rn "sim::Semaphore" --include="*.cpp" --include="*.h" \
      src/cluster || true)
  if [[ -n "${hits}" ]]; then
    echo "error: raw semaphore admission queue in src/cluster (use sched::ReadyQueue):" >&2
    echo "${hits}" >&2
    exit 1
  fi
  hits=$(grep -rnE "(sched_class|deadline_us) *(<|>)=? " \
      --include="*.cpp" --include="*.h" src bench tools examples |
      grep -v "^src/sched/" || true)
  if [[ -n "${hits}" ]]; then
    echo "error: ordering on QoS tags outside src/sched:" >&2
    echo "${hits}" >&2
    exit 1
  fi
}

engine_grep_clean() {
  # The engine::Session layer owns simulation bring-up: nothing outside
  # src/engine and src/sim (plus tests) may construct a sim::Simulation
  # directly.
  echo "==> engine layering grep"
  local hits
  hits=$(grep -rn "sim::Simulation sim;\|sim::Simulation sim(" \
      --include="*.cpp" --include="*.h" src bench examples tools |
      grep -v "^src/engine/\|^src/sim/" || true)
  if [[ -n "${hits}" ]]; then
    echo "error: direct sim::Simulation construction outside the engine:" >&2
    echo "${hits}" >&2
    exit 1
  fi
}

fleet_gate() {
  # Fleet-scale gate: the 1 -> 256 node sweep (bench/fleet_scale) must
  # complete inside a wall-clock floor, the bench itself CHECKs that the
  # worker pool leaves the virtual-time outcome untouched, and — when the
  # machine actually has cores to parallelize over — the 4-thread 64-node
  # point must beat sequential by >= 1.5x.
  local dir="$1"
  local budget_s=120
  echo "==> fleet-scale gate (bench/fleet_scale, 1->256 nodes)"
  local t0 t1 elapsed
  t0=$(date +%s%N)
  "${dir}/bench/fleet_scale" --threads=4 --out=BENCH_fleet.json >/dev/null
  t1=$(date +%s%N)
  elapsed=$(awk -v a="$t0" -v b="$t1" 'BEGIN{printf "%.1f", (b-a)/1e9}')
  echo "    sweep completed in ${elapsed}s (budget ${budget_s}s)"
  if awk -v e="${elapsed}" -v b="${budget_s}" 'BEGIN{exit !(e > b)}'; then
    echo "error: fleet_scale sweep took ${elapsed}s, budget ${budget_s}s" >&2
    exit 1
  fi
  local speedup
  speedup=$(grep -o '"speedup_64": [0-9.]*' BENCH_fleet.json |
      awk '{print $2}')
  local cores
  cores=$(nproc 2>/dev/null || echo 1)
  if [[ "${cores}" -ge 4 ]]; then
    echo "    64-node speedup at --threads=4: ${speedup}x (floor 1.5x)"
    if awk -v s="${speedup}" 'BEGIN{exit !(s < 1.5)}'; then
      echo "error: fleet_scale 64-node --threads=4 speedup ${speedup}x < 1.5x" >&2
      exit 1
    fi
  else
    echo "    64-node speedup at --threads=4: ${speedup}x (informational:" \
         "only ${cores} core(s), the 1.5x floor needs >= 4)"
  fi
}

wallclock_gate() {
  # Host wall-clock regression gate on the hot path. Median of 3 Release
  # runs of fig5_overall --tasks=4096 must beat the pre-engine-refactor
  # baseline (8.357 s) by at least 1.25x.
  local dir="$1"
  local baseline_s=8.357
  local budget_s=6.68   # baseline / 1.25
  echo "==> wall-clock gate (fig5_overall --tasks=4096, median of 3)"
  local runs=()
  local t0 t1
  for _ in 1 2 3; do
    t0=$(date +%s%N)
    "${dir}/bench/fig5_overall" --tasks=4096 >/dev/null
    t1=$(date +%s%N)
    runs+=("$(awk -v a="$t0" -v b="$t1" 'BEGIN{printf "%.3f", (b-a)/1e9}')")
  done
  local median
  median=$(printf '%s\n' "${runs[@]}" | sort -n | sed -n 2p)
  printf '{\n  "bench": "fig5_overall",\n  "tasks": 4096,\n  "runs_s": [%s, %s, %s],\n  "median_s": %s,\n  "pre_refactor_baseline_s": %s,\n  "speedup": %s\n}\n' \
    "${runs[0]}" "${runs[1]}" "${runs[2]}" "${median}" "${baseline_s}" \
    "$(awk -v b="${baseline_s}" -v m="${median}" 'BEGIN{printf "%.2f", b/m}')" \
    > BENCH_wallclock.json
  echo "    runs: ${runs[*]} -> median ${median}s (budget ${budget_s}s)"
  if awk -v m="${median}" -v b="${budget_s}" 'BEGIN{exit !(m > b)}'; then
    echo "error: fig5_overall median ${median}s exceeds ${budget_s}s" >&2
    exit 1
  fi
}

# Both test passes run golden_metrics_test via ctest, pinning fixed-seed
# metrics JSON byte-for-byte against tests/golden/ in Release AND under
# sanitizers.
run_pass build-release -DCMAKE_BUILD_TYPE=Release -DPAGODA_WERROR=ON
cluster_smoke build-release
fault_smoke build-release
qos_smoke build-release
trace_smoke build-release
power_smoke build-release
migrate_smoke build-release
fleet_smoke build-release
vres_smoke build-release
engine_grep_clean
fault_grep_clean
sched_grep_clean
power_grep_clean
vres_grep_clean
wallclock_gate build-release
fleet_gate build-release

echo "==> bench determinism (cluster_scaling)"
build-release/bench/cluster_scaling --tasks=512 --out=/tmp/pagoda_cluster_a.json >/dev/null
build-release/bench/cluster_scaling --tasks=512 --out=/tmp/pagoda_cluster_b.json >/dev/null
cmp /tmp/pagoda_cluster_a.json /tmp/pagoda_cluster_b.json
rm -f /tmp/pagoda_cluster_a.json /tmp/pagoda_cluster_b.json

echo "==> bench determinism + availability gate (fault_recovery)"
# The bench CHECKs retry goodput >= 2x no-retry at the top of the fault
# sweep and that node crashes lose nothing; two runs must be byte-identical.
build-release/bench/fault_recovery --tasks=1000 --out=/tmp/pagoda_fault_a.json >/dev/null
build-release/bench/fault_recovery --tasks=1000 --out=/tmp/pagoda_fault_b.json >/dev/null
cmp /tmp/pagoda_fault_a.json /tmp/pagoda_fault_b.json
rm -f /tmp/pagoda_fault_a.json /tmp/pagoda_fault_b.json

echo "==> bench determinism + QoS isolation gate (qos_isolation)"
# The bench CHECKs interactive p99 under edf AND priority >= 2x better than
# fifo at equal batch goodput, per seed; two runs must be byte-identical —
# and arming the request tracer on run a must not change a byte of the
# BENCH json (the tracer is passive).
build-release/bench/qos_isolation --tasks=1024 --out=/tmp/pagoda_sched_a.json \
    --trace-spans=/tmp/pagoda_qspans.json >/dev/null
build-release/bench/qos_isolation --tasks=1024 --out=/tmp/pagoda_sched_b.json >/dev/null
cmp /tmp/pagoda_sched_a.json /tmp/pagoda_sched_b.json
rm -f /tmp/pagoda_sched_a.json /tmp/pagoda_sched_b.json

echo "==> SLO debugging gate (trace_report --explain-slo)"
# The fifo run at this scale blows the interactive 2 ms SLO; every casualty
# must be attributed to a dominant phase (the fifo story: sched_wait).
slo_out=$(build-release/tools/trace_report --in=/tmp/pagoda_qspans.json \
    --explain-slo)
grep -q "slo_late=" <<<"${slo_out}"
grep -q "dominant=sched_wait" <<<"${slo_out}"
rm -f /tmp/pagoda_qspans.json

echo "==> bench determinism + energy Pareto gate (energy_pareto)"
# The bench CHECKs energy-min >= 1.3x fewer joules/request than always-max
# at equal per-class goodput, per seed; two runs must be byte-identical.
build-release/bench/energy_pareto --out=/tmp/pagoda_power_a.json >/dev/null
build-release/bench/energy_pareto --out=/tmp/pagoda_power_b.json >/dev/null
cmp /tmp/pagoda_power_a.json /tmp/pagoda_power_b.json
rm -f /tmp/pagoda_power_a.json /tmp/pagoda_power_b.json

echo "==> bench determinism + elastic-fleet gate (elastic_fleet)"
# The bench CHECKs the rolling resize loses nothing (shed == dropped == 0,
# exactly-once ledger, >= 99% availability) and the autoscaled diurnal day
# spends >= 1.15x fewer joules/request than the static full fleet at equal
# per-class goodput; two runs must be byte-identical.
build-release/bench/elastic_fleet --out=/tmp/pagoda_migrate_a.json >/dev/null
build-release/bench/elastic_fleet --out=/tmp/pagoda_migrate_b.json >/dev/null
cmp /tmp/pagoda_migrate_a.json /tmp/pagoda_migrate_b.json
rm -f /tmp/pagoda_migrate_a.json /tmp/pagoda_migrate_b.json

echo "==> bench determinism + virtual-occupancy gate (occupancy_virt)"
# The bench CHECKs >= 1.2x throughput and strictly higher measured SMM
# occupancy at the gate oversub factor vs static reservation, per seed,
# plus a compute-mode run verified against the CPU references; two runs
# must be byte-identical.
build-release/bench/occupancy_virt --out=/tmp/pagoda_vres_a.json >/dev/null
build-release/bench/occupancy_virt --out=/tmp/pagoda_vres_b.json >/dev/null
cmp /tmp/pagoda_vres_a.json /tmp/pagoda_vres_b.json
rm -f /tmp/pagoda_vres_a.json /tmp/pagoda_vres_b.json

echo "==> power wake-up attribution gate (trace_report --explain-slo)"
# Diurnal traffic on an energy-min fleet: the peak after a trough wakes a
# sleeping node, and the S-state wake latency must surface as the dominant
# phase of (some of) the resulting SLO casualties.
build-release/tools/pagoda_cli --workload=MM --tasks=4096 --gpus=2 \
    --policy=energy-min --arrival=diurnal:800000:8:20000 --slo-us=5000 \
    --power=default:floor=3 --governor=dvfs \
    --trace-spans=/tmp/pagoda_pspans.json >/dev/null
pslo_out=$(build-release/tools/trace_report --in=/tmp/pagoda_pspans.json \
    --explain-slo)
grep -q "dominant=power_wakeup" <<<"${pslo_out}"
rm -f /tmp/pagoda_pspans.json

if [[ "${1:-}" != "--fast" ]]; then
  run_pass build-asan \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    "-DPAGODA_SANITIZE=${SANITIZERS}"
  cluster_smoke build-asan
  fault_smoke build-asan
  qos_smoke build-asan
  trace_smoke build-asan
  power_smoke build-asan
  migrate_smoke build-asan
  vres_smoke build-asan
  echo "==> qos_isolation determinism under sanitizers"
  build-asan/bench/qos_isolation --tasks=512 --seeds=2 \
      --out=/tmp/pagoda_sched_a.json >/dev/null
  build-asan/bench/qos_isolation --tasks=512 --seeds=2 \
      --out=/tmp/pagoda_sched_b.json >/dev/null
  cmp /tmp/pagoda_sched_a.json /tmp/pagoda_sched_b.json
  rm -f /tmp/pagoda_sched_a.json /tmp/pagoda_sched_b.json

  # ThreadSanitizer pass over the code that actually runs multi-threaded:
  # the shard coordinator's worker pool. Only the targets that exercise it
  # are built (a full TSan build + test run would double the check time for
  # single-threaded code TSan cannot see anything in).
  echo "==> configure build-tsan (-DPAGODA_SANITIZE=thread)"
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DPAGODA_SANITIZE=thread >/dev/null
  echo "==> build build-tsan (pagoda_cli, fleet_scale, shard_test," \
       "migrate_test, vres_test)"
  cmake --build build-tsan -j "${JOBS}" \
      --target pagoda_cli fleet_scale shard_test migrate_test vres_test
  echo "==> TSan: shard coordinator unit tests"
  build-tsan/tests/shard_test
  echo "==> TSan: migration plane (checkpoint/restore, autoscaler)"
  build-tsan/tests/migrate_test
  echo "==> TSan: virtual resource plane (ledger soak, spill/reclaim)"
  build-tsan/tests/vres_test
  echo "==> TSan: threaded cluster + fleet smoke"
  build-tsan/tools/pagoda_cli --workload=MM --tasks=256 --gpus=8 \
      --arrival=poisson:1000000 --threads=4 --metrics >/dev/null
  # Migration arms require_serial, so a threaded run must still be exact.
  build-tsan/tools/pagoda_cli --workload=MM --tasks=256 --gpus=8 \
      --arrival=poisson:1000000 --threads=4 --migrate --power=default \
      --autoscale=0.6 --metrics >/dev/null
  build-tsan/bench/fleet_scale --tasks-per-node=8 --threads=4 \
      --out=/tmp/pagoda_fleet_tsan.json >/dev/null
  rm -f /tmp/pagoda_fleet_tsan.json
fi

echo "==> all checks passed"
