#!/usr/bin/env bash
# Full local verification: a Release build + test run, then an
# address+undefined sanitizer build + test run. Mirrors what CI expects.
#
#   tools/check.sh            # both passes
#   tools/check.sh --fast     # Release pass only
#   PAGODA_SANITIZE="thread" tools/check.sh   # override the sanitizer list
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)
SANITIZERS="${PAGODA_SANITIZE:-address;undefined}"

run_pass() {
  local dir="$1"
  shift
  echo "==> configure ${dir} ($*)"
  cmake -B "${dir}" -S . "$@" >/dev/null
  echo "==> build ${dir}"
  cmake --build "${dir}" -j "${JOBS}"
  echo "==> test ${dir}"
  (cd "${dir}" && ctest --output-on-failure -j "${JOBS}")
}

cluster_smoke() {
  local dir="$1"
  echo "==> cluster smoke ${dir}"
  "${dir}/tools/pagoda_cli" --workload=MM --tasks=512 --gpus=2 \
      --policy=least-loaded --arrival=poisson:150000 --slo-us=5000 >/dev/null
  # Bad cluster flag values must fail fast and print the valid choices.
  if "${dir}/tools/pagoda_cli" --workload=MM --gpus=2 --policy=bogus \
      >/dev/null 2>&1; then
    echo "error: bad --policy unexpectedly accepted" >&2
    exit 1
  fi
  # pagoda_cli exits nonzero here by design; || true keeps pipefail happy.
  ("${dir}/tools/pagoda_cli" --workload=MM --gpus=2 --policy=bogus 2>&1 || true) |
    grep -q "valid policies"
  ("${dir}/tools/pagoda_cli" --workload=MM --gpus=2 --arrival=sawtooth 2>&1 || true) |
    grep -q "poisson:RATE"
}

run_pass build-release -DCMAKE_BUILD_TYPE=Release -DPAGODA_WERROR=ON
cluster_smoke build-release

echo "==> bench determinism (cluster_scaling)"
build-release/bench/cluster_scaling --tasks=512 --out=/tmp/pagoda_cluster_a.json >/dev/null
build-release/bench/cluster_scaling --tasks=512 --out=/tmp/pagoda_cluster_b.json >/dev/null
cmp /tmp/pagoda_cluster_a.json /tmp/pagoda_cluster_b.json
rm -f /tmp/pagoda_cluster_a.json /tmp/pagoda_cluster_b.json

if [[ "${1:-}" != "--fast" ]]; then
  run_pass build-asan \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    "-DPAGODA_SANITIZE=${SANITIZERS}"
  cluster_smoke build-asan
fi

echo "==> all checks passed"
